package prune_test

import (
	"fmt"

	"spatl/internal/models"
	"spatl/internal/prune"
)

// ExampleExtract shows the deployment path of a salient selection: pick
// per-layer keep ratios, extract the physically smaller sub-network, and
// compare its real parameter/FLOPs footprint against the original.
func ExampleExtract() {
	spec := models.Spec{Arch: "resnet20", Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}
	m := models.Build(spec, 1)
	m.Describe()

	ratios := make([]float64, len(m.PrunableUnits()))
	for i := range ratios {
		ratios[i] = 0.5 // keep the top half of each block's filters by L1
	}
	sel := prune.Select(m, ratios)
	sub := prune.Extract(m, sel)

	pFull, fFull := m.Describe()
	pSub, fSub := sub.Describe()
	fmt.Println("params shrink:", pSub < pFull)
	fmt.Println("flops shrink:", fSub < fFull)
	fmt.Printf("kept state fraction: %.2f\n", sel.KeepFrac())
	// Output:
	// params shrink: true
	// flops shrink: true
	// kept state fraction: 0.53
}
