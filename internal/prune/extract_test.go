package prune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spatl/internal/eval"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// extractEquivalence asserts that the physically extracted model computes
// the same eval-mode function as the masked original.
func extractEquivalence(t *testing.T, arch string, ratios []float64, seed int64) {
	t.Helper()
	spec := models.Spec{Arch: arch, Classes: 5, InC: 3, H: 16, W: 16, Width: 0.25}
	if arch == "cnn2" {
		spec = models.Spec{Arch: arch, Classes: 5, InC: 1, H: 28, W: 28, Width: 0.25}
	}
	m := models.Build(spec, seed)
	// Move BN stats off their init so the test is not vacuous.
	x := tensor.New(6, spec.InC, spec.H, spec.W)
	x.Randn(nn.Rng(seed+1), 1)
	m.Forward(x, true)
	m.Forward(x, true)

	if ratios == nil {
		units := m.PrunableUnits()
		rng := rand.New(rand.NewSource(seed + 2))
		ratios = make([]float64, len(units))
		for i := range ratios {
			ratios[i] = 0.3 + 0.7*rng.Float64()
		}
	}
	sel := Select(m, ratios)
	ext := Extract(m, sel)

	var masked *tensor.Tensor
	WithMasked(m, sel, func() { masked = m.Forward(x, false) })
	got := ext.Forward(x, false)
	if got.Len() != masked.Len() {
		t.Fatalf("output sizes differ: %d vs %d", got.Len(), masked.Len())
	}
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-masked.Data[i])) > 2e-4*(1+math.Abs(float64(masked.Data[i]))) {
			t.Fatalf("%s: extracted output[%d] = %v, masked = %v", arch, i, got.Data[i], masked.Data[i])
		}
	}
}

func TestExtractEquivalenceResNet(t *testing.T) { extractEquivalence(t, "resnet20", nil, 1) }
func TestExtractEquivalenceVGG(t *testing.T)    { extractEquivalence(t, "vgg11", nil, 2) }
func TestExtractEquivalenceCNN2(t *testing.T)   { extractEquivalence(t, "cnn2", nil, 3) }

func TestExtractEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
		m := models.Build(spec, seed)
		x := tensor.New(2, 3, 8, 8)
		x.Randn(nn.Rng(seed+1), 1)
		m.Forward(x, true)
		rng := rand.New(rand.NewSource(seed + 2))
		ratios := make([]float64, len(m.PrunableUnits()))
		for i := range ratios {
			ratios[i] = 0.25 + 0.75*rng.Float64()
		}
		sel := Select(m, ratios)
		ext := Extract(m, sel)
		var masked *tensor.Tensor
		WithMasked(m, sel, func() { masked = m.Forward(x, false) })
		got := ext.Forward(x, false)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-masked.Data[i])) > 1e-3*(1+math.Abs(float64(masked.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractActuallyShrinks(t *testing.T) {
	for _, arch := range []string{"resnet20", "vgg11"} {
		// 16×16 input: VGG-11's pooling stack needs it.
		m := models.Build(models.Spec{Arch: arch, Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}, 1)
		m.Describe()
		k := len(m.PrunableUnits())
		sel := Select(m, uniformRatios(k, 0.5))
		ext := Extract(m, sel)
		pBase, fBase := m.Describe()
		pExt, fExt := ext.Describe()
		if pExt >= pBase {
			t.Fatalf("%s: extracted params %d not below original %d", arch, pExt, pBase)
		}
		if fExt >= fBase {
			t.Fatalf("%s: extracted FLOPs %d not below original %d", arch, fExt, fBase)
		}
		// Analytic masked FLOPs must match the extracted model's real
		// FLOPs closely (both count the same convolutions).
		prAnalytic, _ := MaskedFLOPs(m, sel.Masks)
		ratio := float64(fExt) / float64(prAnalytic)
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("%s: analytic pruned FLOPs %d vs extracted %d (ratio %.3f)", arch, prAnalytic, fExt, ratio)
		}
	}
}

func TestExtractFullSelectionIsIdentity(t *testing.T) {
	m := testModel(t, "resnet20")
	x := tensor.New(2, 3, 8, 8)
	x.Randn(nn.Rng(9), 1)
	m.Forward(x, true)
	sel := Select(m, uniformRatios(len(m.PrunableUnits()), 1))
	ext := Extract(m, sel)
	a := m.Forward(x, false)
	b := ext.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("ratio-1 extraction must reproduce the model exactly")
		}
	}
	pA, _ := m.Describe()
	pB, _ := ext.Describe()
	if pA != pB {
		t.Fatalf("ratio-1 extraction changed param count: %d vs %d", pA, pB)
	}
}

func TestExtractedModelIsTrainable(t *testing.T) {
	// Fine-tuning the extracted model must work (gradients flow through
	// the reduced-width blocks).
	m := testModel(t, "resnet20")
	train, val := trainAndVal(t)
	sel := Select(m, uniformRatios(len(m.PrunableUnits()), 0.5))
	ext := Extract(m, sel)
	params := ext.Params()
	opt := nn.NewSGD(params, 0.02, 0.9, 0)
	rng := rand.New(rand.NewSource(11))
	var firstLoss, lastLoss float64
	for e := 0; e < 3; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			out := ext.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(out, y)
			ext.Backward(grad)
			opt.Step()
			if firstLoss == 0 {
				firstLoss = loss
			}
			lastLoss = loss
		}
	}
	if lastLoss >= firstLoss {
		t.Fatalf("extracted model did not train: first %.4f last %.4f", firstLoss, lastLoss)
	}
	if acc := eval.Accuracy(ext, val, 32); acc < 0.15 {
		t.Fatalf("extracted model accuracy %.3f unreasonably low", acc)
	}
}

func TestExtractUnsupportedArchPanics(t *testing.T) {
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	m := models.Build(spec, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported architecture")
		}
	}()
	Extract(m, &Selection{})
}
