package prune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

func testModel(t testing.TB, arch string) *models.SplitModel {
	t.Helper()
	return models.Build(models.Spec{Arch: arch, Classes: 10, InC: 3, H: 8, W: 8, Width: 0.25}, 1)
}

func uniformRatios(n int, r float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r
	}
	return out
}

func TestMaskFromScores(t *testing.T) {
	m := MaskFromScores([]float64{3, 1, 4, 1, 5}, 0.4)
	if m.Kept != 2 {
		t.Fatalf("kept %d, want 2", m.Kept)
	}
	if !m.Keep[4] || !m.Keep[2] {
		t.Fatalf("must keep the two largest, got %v", m.Keep)
	}
	// Always at least one.
	m = MaskFromScores([]float64{1, 2}, 0.0)
	if m.Kept != 1 {
		t.Fatal("minimum one channel")
	}
	// Ratio 1 keeps all.
	m = MaskFromScores([]float64{1, 2, 3}, 1)
	if m.Kept != 3 {
		t.Fatal("ratio 1 keeps all")
	}
}

func TestChannelScoresMatchManualL1(t *testing.T) {
	m := testModel(t, "resnet20")
	u := m.PrunableUnits()[0]
	scores := ChannelScores(u.Conv)
	w := u.Conv.Weight().W
	cols := w.Dim(1)
	var manual float64
	for j := 0; j < cols; j++ {
		manual += math.Abs(float64(w.Data[j]))
	}
	if math.Abs(scores[0]-manual) > 1e-5 {
		t.Fatalf("score[0] = %v, manual %v", scores[0], manual)
	}
}

func TestSelectFullRatiosSelectsEverything(t *testing.T) {
	m := testModel(t, "resnet20")
	sel := Select(m, uniformRatios(len(m.PrunableUnits()), 1))
	if len(sel.Ranges) != 1 {
		t.Fatalf("full selection should be one range, got %d", len(sel.Ranges))
	}
	if sel.KeepFrac() != 1 {
		t.Fatalf("KeepFrac = %v", sel.KeepFrac())
	}
}

func TestSelectReducesPayload(t *testing.T) {
	for _, arch := range []string{"resnet20", "vgg11", "cnn2"} {
		m := testModel(t, arch)
		sel := Select(m, uniformRatios(len(m.PrunableUnits()), 0.5))
		if sel.KeepFrac() >= 0.95 {
			t.Fatalf("%s: 0.5 ratios kept %.3f of state", arch, sel.KeepFrac())
		}
		if sel.KeepFrac() <= 0.2 {
			t.Fatalf("%s: selection dropped too much (%.3f)", arch, sel.KeepFrac())
		}
		// Ranges must be valid for comm transport.
		s := &comm.Sparse{Ranges: sel.Ranges, Values: make([]float32, 0)}
		n := 0
		for _, r := range sel.Ranges {
			n += int(r.Len)
		}
		s.Values = make([]float32, n)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid ranges: %v", arch, err)
		}
	}
}

// Property: for random ratio vectors, selection ranges are sorted,
// non-overlapping and within bounds, and KeepFrac is monotone in a
// uniform ratio.
func TestSelectionRangesWellFormedProperty(t *testing.T) {
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ratios := make([]float64, k)
		for i := range ratios {
			ratios[i] = 0.2 + 0.8*rng.Float64()
		}
		sel := Select(m, ratios)
		prevEnd := uint32(0)
		for i, r := range sel.Ranges {
			if r.Len == 0 {
				return false
			}
			if i > 0 && r.Start < prevEnd {
				return false
			}
			if int(r.Start+r.Len) > sel.StateLen {
				return false
			}
			prevEnd = r.Start + r.Len
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKeepFracMonotone(t *testing.T) {
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	prev := -1.0
	for _, r := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		f := Select(m, uniformRatios(k, r)).KeepFrac()
		if f < prev {
			t.Fatalf("KeepFrac not monotone: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestMaskedFLOPsBounds(t *testing.T) {
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	pr, tot := MaskedFLOPs(m, Select(m, uniformRatios(k, 1)).Masks)
	if pr != tot {
		t.Fatalf("full ratios: pruned %d != total %d", pr, tot)
	}
	pr2, tot2 := MaskedFLOPs(m, Select(m, uniformRatios(k, 0.4)).Masks)
	if tot2 != tot {
		t.Fatal("total must not change with masks")
	}
	if pr2 >= pr {
		t.Fatal("pruning must reduce FLOPs")
	}
	if float64(pr2)/float64(tot2) < 0.2 {
		t.Fatalf("0.4 ratios cut too much: %.3f", float64(pr2)/float64(tot2))
	}
}

func TestWithMaskedZeroesAndRestores(t *testing.T) {
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	before := m.State(models.ScopeAll)
	sel := Select(m, uniformRatios(k, 0.5))

	x := tensor.New(2, 3, 8, 8)
	x.Randn(nn.Rng(3), 1)
	// Layers reuse their output buffers across calls, so snapshot the
	// first forward before running the second.
	full := m.Forward(x, false).Clone()
	var masked *tensor.Tensor
	WithMasked(m, sel, func() {
		masked = m.Forward(x, false)
	})
	after := m.State(models.ScopeAll)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("WithMasked must restore weights exactly")
		}
	}
	same := true
	for i := range full.Data {
		if full.Data[i] != masked.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("masked forward should differ from full forward")
	}
}

func TestMaskedChannelsProduceZeroOutput(t *testing.T) {
	// After masking, a pruned channel of the unit's BN output must be
	// exactly zero in eval mode.
	m := testModel(t, "vgg11")
	units := m.PrunableUnits()
	masks := make([]Mask, len(units))
	for i, u := range units {
		masks[i] = FullMask(u.Conv.OutC)
	}
	// Prune channel 0 of unit 0.
	masks[0].Keep[0] = false
	masks[0].Kept--
	sel := SelectWithMasks(m, masks)
	x := tensor.New(1, 3, 8, 8)
	x.Randn(nn.Rng(5), 1)
	WithMasked(m, sel, func() {
		// Forward through conv0+bn0 only.
		h := units[0].Conv.Forward(x, false)
		h = units[0].BN.Forward(h, false)
		plane := h.Dim(2) * h.Dim(3)
		for j := 0; j < plane; j++ {
			if h.Data[j] != 0 {
				t.Fatalf("pruned channel output %v at %d, want 0", h.Data[j], j)
			}
		}
	})
}

func TestL1AndFPGMMasksDiffer(t *testing.T) {
	m := testModel(t, "resnet20")
	l1 := L1Masks(m, 0.5)
	fpgm := FPGMMasks(m, 0.5)
	if len(l1) != len(fpgm) {
		t.Fatal("mask counts differ")
	}
	differs := false
	for i := range l1 {
		if l1[i].Kept != fpgm[i].Kept {
			t.Fatal("same ratio must keep same count")
		}
		for j := range l1[i].Keep {
			if l1[i].Keep[j] != fpgm[i].Keep[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Log("warning: L1 and FPGM selected identical channels (possible but unusual)")
	}
}

func trainAndVal(t testing.TB) (*data.Dataset, *data.Dataset) {
	t.Helper()
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 10, H: 8, W: 8, Noise: 0.25}, 300, 21, 22)
	return ds.Split(0.8)
}

func TestSFPReturnsMasksAndTrains(t *testing.T) {
	m := testModel(t, "resnet20")
	train, _ := trainAndVal(t)
	masks := SFP(m, train, 0.6, 1, 0.05, rand.New(rand.NewSource(1)))
	if len(masks) != len(m.PrunableUnits()) {
		t.Fatalf("SFP returned %d masks", len(masks))
	}
	for i, mk := range masks {
		want := int(math.Ceil(0.6 * float64(len(mk.Keep))))
		if mk.Kept != want {
			t.Fatalf("unit %d kept %d, want %d", i, mk.Kept, want)
		}
	}
}

func TestDSAMeetsBudget(t *testing.T) {
	m := testModel(t, "resnet20")
	_, val := trainAndVal(t)
	masks := DSAMasks(m, val, 0.7)
	pr, tot := MaskedFLOPs(m, masks)
	ratio := float64(pr) / float64(tot)
	if ratio > 0.78 {
		t.Fatalf("DSA FLOPs ratio %.3f exceeds budget 0.7 by too much", ratio)
	}
}

func TestUniformRatiosForBudget(t *testing.T) {
	m := testModel(t, "resnet20")
	r := UniformRatiosForBudget(m, 0.6)
	masks := L1Masks(m, r)
	pr, tot := MaskedFLOPs(m, masks)
	got := float64(pr) / float64(tot)
	if math.Abs(got-0.6) > 0.12 {
		t.Fatalf("budget search gave ratio %.3f for budget 0.6", got)
	}
}

func TestFineTunePinsPrunedChannels(t *testing.T) {
	m := testModel(t, "resnet20")
	train, _ := trainAndVal(t)
	k := len(m.PrunableUnits())
	sel := Select(m, uniformRatios(k, 0.5))
	FineTune(m, sel, train, 1, 0.05, rand.New(rand.NewSource(2)))
	for ui, u := range sel.Units {
		w := u.Conv.Weight().W
		rowLen := w.Dim(1)
		for ch, keep := range sel.Masks[ui].Keep {
			if keep {
				continue
			}
			row := w.Data[ch*rowLen : (ch+1)*rowLen]
			for j, v := range row {
				if v != 0 {
					t.Fatalf("pruned channel %d weight %d = %v after fine-tune", ch, j, v)
				}
			}
		}
	}
}

func TestEnvStepRewardComponents(t *testing.T) {
	m := testModel(t, "resnet20")
	train, val := trainAndVal(t)
	_ = train
	env := NewEnv(m, val, 0.6)
	k := len(m.PrunableUnits())
	r := env.Step(uniformRatios(k, 1))
	// Keeping everything: FLOPs ratio 1 > budget 0.6, so reward is
	// penalized below raw accuracy.
	if env.LastFLOPsRatio < 0.99 {
		t.Fatalf("full ratios FLOPs ratio %v", env.LastFLOPsRatio)
	}
	if r >= env.LastAcc {
		t.Fatal("over-budget selection must be penalized")
	}
	r2 := env.Step(uniformRatios(k, 0.3))
	if env.LastFLOPsRatio > 0.6 {
		t.Fatalf("0.3 ratios should meet budget, got %v", env.LastFLOPsRatio)
	}
	if r2 != env.LastAcc {
		t.Fatal("within-budget reward must equal accuracy")
	}
	if env.LastSelection == nil {
		t.Fatal("LastSelection not recorded")
	}
}

func TestEnvAccuracyEvaluatedUnderMask(t *testing.T) {
	m := testModel(t, "resnet20")
	_, val := trainAndVal(t)
	env := NewEnv(m, val, 1.0) // no budget pressure
	k := len(m.PrunableUnits())
	full := eval.Accuracy(m, val, 64)
	env.Step(uniformRatios(k, 1))
	if math.Abs(env.LastAcc-full) > 1e-9 {
		t.Fatalf("ratio-1 masked accuracy %v != full accuracy %v", env.LastAcc, full)
	}
}

func TestSelectionAlwaysShipsPerChannelScalars(t *testing.T) {
	// BN affine/statistics and conv biases must be salient regardless of
	// the masks — they are negligible bytes and keep the global model's
	// non-salient channels correctly normalized.
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	sel := Select(m, uniformRatios(k, 0.3))
	covered := make([]bool, sel.StateLen)
	for _, r := range sel.Ranges {
		for i := r.Start; i < r.Start+r.Len; i++ {
			covered[i] = true
		}
	}
	paramSeg, bnSeg := m.EncoderOffsets()
	for _, u := range sel.Units {
		if u.BN == nil {
			continue
		}
		for _, p := range u.BN.Params() {
			seg := paramSeg[p.W]
			for i := seg.Off; i < seg.Off+seg.Len; i++ {
				if !covered[i] {
					t.Fatalf("BN affine entry %d not salient", i)
				}
			}
		}
		stats := bnSeg[u.BN]
		for _, seg := range stats {
			for i := seg.Off; i < seg.Off+seg.Len; i++ {
				if !covered[i] {
					t.Fatalf("BN statistic entry %d not salient", i)
				}
			}
		}
	}
}

func TestZeroPrunedMatchesWithMasked(t *testing.T) {
	m := testModel(t, "resnet20")
	k := len(m.PrunableUnits())
	sel := Select(m, uniformRatios(k, 0.5))
	x := tensor.New(2, 3, 8, 8)
	x.Randn(nn.Rng(7), 1)
	var masked *tensor.Tensor
	WithMasked(m, sel, func() { masked = m.Forward(x, false) })
	// Permanent zeroing on a clone must give the same output.
	c := m.Clone()
	cSel := SelectWithMasks(c, sel.Masks)
	ZeroPruned(c, cSel)
	got := c.Forward(x, false)
	for i := range got.Data {
		if got.Data[i] != masked.Data[i] {
			t.Fatal("ZeroPruned must match WithMasked")
		}
	}
}
