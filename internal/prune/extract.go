package prune

import (
	"fmt"

	"spatl/internal/models"
	"spatl/internal/nn"
)

// Extract materializes a selection as a physically smaller model:
// pruned channels are removed from the tensors instead of masked to
// zero, so the returned model really runs with fewer FLOPs and
// parameters — the deployed form behind the paper's inference
// acceleration results (§V-D). In evaluation mode the extracted model
// computes exactly the same function as the masked original.
//
// The returned model shares no tensors with the input. Its Spec is
// copied verbatim for reference, but the model's channel widths no
// longer follow the spec — Clone/Build round-trips are not meaningful
// on extracted models; use them for inference and fine-tuning.
func Extract(m *models.SplitModel, sel *Selection) *models.SplitModel {
	switch m.Spec.Arch {
	case "resnet20", "resnet32", "resnet56", "resnet18":
		return extractResNet(m, sel)
	case "vgg11", "cnn2":
		return extractChain(m, sel)
	}
	panic(fmt.Sprintf("prune: Extract does not support architecture %q", m.Spec.Arch))
}

// keepIndices lists the surviving channel indices of a mask in order.
func keepIndices(mask Mask) []int {
	out := make([]int, 0, mask.Kept)
	for i, k := range mask.Keep {
		if k {
			out = append(out, i)
		}
	}
	return out
}

// copyConv copies src's filters into dst, keeping only the given output
// rows and input channel groups (nil means all).
func copyConv(dst, src *nn.Conv2D, keepOut, keepIn []int) {
	kk := src.K * src.K
	srcW, dstW := src.Weight().W, dst.Weight().W
	srcCols, dstCols := srcW.Dim(1), dstW.Dim(1)
	if keepOut == nil {
		keepOut = allIndices(src.OutC)
	}
	if keepIn == nil {
		keepIn = allIndices(src.InC)
	}
	if len(keepOut) != dstW.Dim(0) || len(keepIn)*kk != dstCols {
		panic(fmt.Sprintf("prune: copyConv shape mismatch dst(%d,%d) keepOut=%d keepIn=%d",
			dstW.Dim(0), dstCols, len(keepOut), len(keepIn)))
	}
	for di, so := range keepOut {
		srcRow := srcW.Data[so*srcCols : (so+1)*srcCols]
		dstRow := dstW.Data[di*dstCols : (di+1)*dstCols]
		for dj, si := range keepIn {
			copy(dstRow[dj*kk:(dj+1)*kk], srcRow[si*kk:(si+1)*kk])
		}
	}
	dst.Weight().Bump() // direct Data writes above
	// Bias, when present, follows the output channels.
	sp, dp := src.Params(), dst.Params()
	if len(sp) > 1 && len(dp) > 1 {
		for di, so := range keepOut {
			dp[1].W.Data[di] = sp[1].W.Data[so]
		}
		dp[1].Bump()
	}
}

// copyBN copies the kept channels of src's affine parameters and running
// statistics into dst (nil keeps all).
func copyBN(dst, src *nn.BatchNorm2D, keep []int) {
	if keep == nil {
		keep = allIndices(src.C)
	}
	sg, sb := src.Params()[0].W.Data, src.Params()[1].W.Data
	dg, db := dst.Params()[0].W.Data, dst.Params()[1].W.Data
	for di, si := range keep {
		dg[di] = sg[si]
		db[di] = sb[si]
		dst.RunMean[di] = src.RunMean[si]
		dst.RunVar[di] = src.RunVar[si]
	}
	dst.Params()[0].Bump()
	dst.Params()[1].Bump()
}

// copyLinear copies a fully connected layer verbatim.
func copyLinear(dst, src *nn.Linear) {
	dst.Weight().W.CopyFrom(src.Weight().W)
	dst.Params()[1].W.CopyFrom(src.Params()[1].W)
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// extractResNet rebuilds a ResNet with each block's internal width
// reduced to its mask's kept channels. Block outputs (and therefore the
// residual adds and shortcuts) keep their original widths.
func extractResNet(m *models.SplitModel, sel *Selection) *models.SplitModel {
	rng := nn.Rng(0)
	out := &models.SplitModel{Spec: m.Spec}
	enc := nn.NewSequential("encoder")
	unit := 0
	for _, l := range m.Encoder.Layers {
		switch v := l.(type) {
		case *nn.Conv2D: // stem conv
			c := nn.NewConv2D(v.Name(), v.InC, v.OutC, v.K, v.Stride, v.Pad, len(v.Params()) > 1, rng)
			copyConv(c, v, nil, nil)
			enc.Append(c)
		case *nn.BatchNorm2D:
			bn := nn.NewBatchNorm2D(v.Name(), v.C)
			copyBN(bn, v, nil)
			enc.Append(bn)
		case *nn.ReLU:
			enc.Append(nn.NewReLU(v.Name()))
		case *nn.GlobalAvgPool:
			enc.Append(nn.NewGlobalAvgPool(v.Name()))
		case *nn.BasicBlock:
			conv1, conv2, sc := v.Convs()
			mask := sel.Masks[unit]
			keep := keepIndices(mask)
			unit++
			nb := nn.NewBasicBlockInternal(v.Name(), conv1.InC, len(keep), conv2.OutC, conv1.Stride, rng)
			nc1, nc2, nsc := nb.Convs()
			copyConv(nc1, conv1, keep, nil)
			copyConv(nc2, conv2, nil, keep)
			subs, nsubs := v.SubLayers(), nb.SubLayers()
			copyBN(nsubs[1].(*nn.BatchNorm2D), subs[1].(*nn.BatchNorm2D), keep) // bn1
			copyBN(nsubs[4].(*nn.BatchNorm2D), subs[4].(*nn.BatchNorm2D), nil)  // bn2
			if sc != nil {
				copyConv(nsc, sc, nil, nil)
				copyBN(nsubs[6].(*nn.BatchNorm2D), subs[6].(*nn.BatchNorm2D), nil)
			}
			enc.Append(nb)
		default:
			panic(fmt.Sprintf("prune: unexpected resnet encoder layer %T", l))
		}
	}
	if unit != len(sel.Masks) {
		panic(fmt.Sprintf("prune: used %d of %d masks", unit, len(sel.Masks)))
	}
	out.Encoder = enc
	out.Predictor = clonePredictor(m.Predictor)
	return out
}

// extractChain rebuilds a sequential conv chain (VGG-11, CNN2): each
// pruned conv shrinks its output channels, and the following conv's
// input channels shrink to match. The final conv keeps its width so the
// predictor input is unchanged.
func extractChain(m *models.SplitModel, sel *Selection) *models.SplitModel {
	rng := nn.Rng(0)
	out := &models.SplitModel{Spec: m.Spec}
	enc := nn.NewSequential("encoder")
	ci := 0
	var prevKeep []int // nil = all input channels survive
	for _, l := range m.Encoder.Layers {
		switch v := l.(type) {
		case *nn.Conv2D:
			var keep []int
			if ci < len(sel.Masks) {
				keep = keepIndices(sel.Masks[ci])
			}
			outC := v.OutC
			if keep != nil {
				outC = len(keep)
			}
			inC := v.InC
			if prevKeep != nil {
				inC = len(prevKeep)
			}
			c := nn.NewConv2D(v.Name(), inC, outC, v.K, v.Stride, v.Pad, len(v.Params()) > 1, rng)
			copyConv(c, v, keep, prevKeep)
			enc.Append(c)
			prevKeep = keep
			ci++
		case *nn.BatchNorm2D:
			n := v.C
			if prevKeep != nil {
				n = len(prevKeep)
			}
			bn := nn.NewBatchNorm2D(v.Name(), n)
			copyBN(bn, v, prevKeep)
			enc.Append(bn)
		case *nn.ReLU:
			enc.Append(nn.NewReLU(v.Name()))
		case *nn.MaxPool2D:
			enc.Append(nn.NewMaxPool2D(v.Name(), v.K))
		case *nn.GlobalAvgPool:
			enc.Append(nn.NewGlobalAvgPool(v.Name()))
		case *nn.Flatten:
			enc.Append(nn.NewFlatten(v.Name()))
		case *nn.Linear:
			// Encoder linears (CNN2's fc1) follow the final, unpruned
			// conv, so they copy verbatim.
			fc := nn.NewLinear(v.Name(), v.In, v.Out, rng)
			copyLinear(fc, v)
			enc.Append(fc)
		default:
			panic(fmt.Sprintf("prune: unexpected chain encoder layer %T", l))
		}
	}
	out.Encoder = enc
	out.Predictor = clonePredictor(m.Predictor)
	return out
}

// clonePredictor deep-copies a predictor head (linears and ReLUs).
func clonePredictor(p *nn.Sequential) *nn.Sequential {
	rng := nn.Rng(0)
	out := nn.NewSequential(p.Name())
	for _, l := range p.Layers {
		switch v := l.(type) {
		case *nn.Linear:
			fc := nn.NewLinear(v.Name(), v.In, v.Out, rng)
			copyLinear(fc, v)
			out.Append(fc)
		case *nn.ReLU:
			out.Append(nn.NewReLU(v.Name()))
		case *nn.Flatten:
			out.Append(nn.NewFlatten(v.Name()))
		default:
			panic(fmt.Sprintf("prune: unexpected predictor layer %T", l))
		}
	}
	return out
}
