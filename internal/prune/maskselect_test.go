package prune

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sortMaskFromScores is the retained reference selection: a stable sort
// on descending score (ties resolved by original index), keeping the
// first ceil(ratio·n) channels — exactly the implementation quickselect
// replaced.
func sortMaskFromScores(scores []float64, ratio float64) Mask {
	n := len(scores)
	keep := int(math.Ceil(ratio * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	m := Mask{Keep: make([]bool, n)}
	for _, i := range order[:keep] {
		m.Keep[i] = true
	}
	m.Kept = keep
	return m
}

// TestMaskFromScoresMatchesStableSort drives the quickselect selection
// against the stable-sort reference across sizes, keep ratios, and
// score distributions heavy with duplicates (L1 scores of pruned-away
// channels collapse to identical values), asserting the selected channel
// set is identical in every case.
func TestMaskFromScoresMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ratios := []float64{0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	for _, n := range []int{1, 2, 3, 5, 8, 16, 17, 64, 100, 257} {
		for trial := 0; trial < 8; trial++ {
			scores := make([]float64, n)
			switch trial % 4 {
			case 0: // distinct
				for i := range scores {
					scores[i] = rng.NormFloat64()
				}
			case 1: // heavy duplicates
				for i := range scores {
					scores[i] = float64(rng.Intn(3))
				}
			case 2: // all equal
				for i := range scores {
					scores[i] = 7
				}
			case 3: // sorted ascending (adversarial for naive pivots)
				for i := range scores {
					scores[i] = float64(i)
				}
			}
			for _, ratio := range ratios {
				got := MaskFromScores(scores, ratio)
				want := sortMaskFromScores(scores, ratio)
				if got.Kept != want.Kept {
					t.Fatalf("n=%d trial=%d ratio=%v: kept %d, want %d", n, trial, ratio, got.Kept, want.Kept)
				}
				for i := range want.Keep {
					if got.Keep[i] != want.Keep[i] {
						t.Fatalf("n=%d trial=%d ratio=%v: Keep[%d]=%v, want %v",
							n, trial, ratio, i, got.Keep[i], want.Keep[i])
					}
				}
			}
		}
	}
}

// TestMaskFromScoresEdgeCases pins the boundary behavior the SSFL
// mask-agreement round depends on: ratio 0 clamps to a single
// survivor, ratio 1 keeps every channel, all-equal scores resolve ties
// by lowest index, and non-finite scores select deterministically —
// NaN is normalized to -Inf (never salient unless the keep count
// forces it) because the raw comparator is not a total order under
// NaN; ±Inf rank as ordinary extremes.
func TestMaskFromScoresEdgeCases(t *testing.T) {
	// ratio 0 keeps exactly the top channel.
	m := MaskFromScores([]float64{2, 9, 4}, 0)
	if m.Kept != 1 || !m.Keep[1] {
		t.Fatalf("ratio 0: kept=%d keep=%v, want only channel 1", m.Kept, m.Keep)
	}
	// ratio 1 keeps everything, NaN included.
	m = MaskFromScores([]float64{math.NaN(), 1, math.Inf(-1)}, 1)
	if m.Kept != 3 || !m.Keep[0] || !m.Keep[1] || !m.Keep[2] {
		t.Fatalf("ratio 1: kept=%d keep=%v, want all", m.Kept, m.Keep)
	}
	// All-equal scores: ties break to the lowest indices.
	m = MaskFromScores([]float64{5, 5, 5, 5}, 0.5)
	if m.Kept != 2 || !m.Keep[0] || !m.Keep[1] || m.Keep[2] || m.Keep[3] {
		t.Fatalf("all-equal: keep=%v, want channels 0,1", m.Keep)
	}
	// NaN loses to every ranked score, including -Inf ties broken by
	// index: with one slot, the finite channel wins.
	m = MaskFromScores([]float64{math.NaN(), math.NaN(), 1}, 0.3)
	if m.Kept != 1 || !m.Keep[2] {
		t.Fatalf("NaN never salient: keep=%v, want only channel 2", m.Keep)
	}
	// All-NaN scores: the forced keep resolves to the lowest indices.
	m = MaskFromScores([]float64{math.NaN(), math.NaN(), math.NaN()}, 0.67)
	if m.Kept != 3 || !m.Keep[0] {
		t.Fatalf("all-NaN: kept=%d keep=%v", m.Kept, m.Keep)
	}
}

// TestMaskFromScoresNonFiniteMatchesReference drives random NaN/±Inf
// mixtures through quickselect and the stable-sort reference (on the
// same NaN→-Inf normalization — raw NaN breaks the sort comparator
// too), asserting identical selections and that the caller's score
// slice is never mutated by the normalization.
func TestMaskFromScoresNonFiniteMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, 5, 17, 64, 100} {
		for trial := 0; trial < 12; trial++ {
			scores := make([]float64, n)
			for i := range scores {
				switch rng.Intn(5) {
				case 0:
					scores[i] = math.NaN()
				case 1:
					scores[i] = math.Inf(1)
				case 2:
					scores[i] = math.Inf(-1)
				default:
					scores[i] = rng.NormFloat64()
				}
			}
			orig := append([]float64(nil), scores...)
			normalized := make([]float64, n)
			for i, s := range scores {
				if math.IsNaN(s) {
					normalized[i] = math.Inf(-1)
				} else {
					normalized[i] = s
				}
			}
			for _, ratio := range []float64{0, 0.3, 0.5, 1} {
				got := MaskFromScores(scores, ratio)
				want := sortMaskFromScores(normalized, ratio)
				if got.Kept != want.Kept {
					t.Fatalf("n=%d trial=%d ratio=%v: kept %d, want %d", n, trial, ratio, got.Kept, want.Kept)
				}
				for i := range want.Keep {
					if got.Keep[i] != want.Keep[i] {
						t.Fatalf("n=%d trial=%d ratio=%v: Keep[%d]=%v, want %v",
							n, trial, ratio, i, got.Keep[i], want.Keep[i])
					}
				}
			}
			for i := range scores {
				same := scores[i] == orig[i] || (math.IsNaN(scores[i]) && math.IsNaN(orig[i]))
				if !same {
					t.Fatalf("n=%d trial=%d: input scores[%d] mutated: %v -> %v", n, trial, i, orig[i], scores[i])
				}
			}
		}
	}
}
