package prune

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sortMaskFromScores is the retained reference selection: a stable sort
// on descending score (ties resolved by original index), keeping the
// first ceil(ratio·n) channels — exactly the implementation quickselect
// replaced.
func sortMaskFromScores(scores []float64, ratio float64) Mask {
	n := len(scores)
	keep := int(math.Ceil(ratio * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	m := Mask{Keep: make([]bool, n)}
	for _, i := range order[:keep] {
		m.Keep[i] = true
	}
	m.Kept = keep
	return m
}

// TestMaskFromScoresMatchesStableSort drives the quickselect selection
// against the stable-sort reference across sizes, keep ratios, and
// score distributions heavy with duplicates (L1 scores of pruned-away
// channels collapse to identical values), asserting the selected channel
// set is identical in every case.
func TestMaskFromScoresMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ratios := []float64{0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	for _, n := range []int{1, 2, 3, 5, 8, 16, 17, 64, 100, 257} {
		for trial := 0; trial < 8; trial++ {
			scores := make([]float64, n)
			switch trial % 4 {
			case 0: // distinct
				for i := range scores {
					scores[i] = rng.NormFloat64()
				}
			case 1: // heavy duplicates
				for i := range scores {
					scores[i] = float64(rng.Intn(3))
				}
			case 2: // all equal
				for i := range scores {
					scores[i] = 7
				}
			case 3: // sorted ascending (adversarial for naive pivots)
				for i := range scores {
					scores[i] = float64(i)
				}
			}
			for _, ratio := range ratios {
				got := MaskFromScores(scores, ratio)
				want := sortMaskFromScores(scores, ratio)
				if got.Kept != want.Kept {
					t.Fatalf("n=%d trial=%d ratio=%v: kept %d, want %d", n, trial, ratio, got.Kept, want.Kept)
				}
				for i := range want.Keep {
					if got.Keep[i] != want.Keep[i] {
						t.Fatalf("n=%d trial=%d ratio=%v: Keep[%d]=%v, want %v",
							n, trial, ratio, i, got.Keep[i], want.Keep[i])
					}
				}
			}
		}
	}
}
