// Package prune implements salient parameter selection — the mechanism
// SPATL uses both to cut communication (only salient encoder parameters
// travel, §IV-B/§IV-C1) and to accelerate local inference (the selection
// is a structured channel pruning, §V-D). Filters are ranked by L1
// magnitude within each prunable unit; a keep-ratio vector (the RL
// agent's action) determines how many survive. The package also provides
// the classic pruning baselines the paper compares against in Table IV
// (L1-uniform, SFP, FPGM, and a DSA-style sensitivity allocation) and the
// PPO pruning environment used to pre-train and fine-tune the agent.
package prune

import (
	"fmt"
	"math"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// Mask records which output channels of one prunable unit survive.
type Mask struct {
	Keep []bool
	Kept int
}

// Frac returns the kept fraction.
func (m Mask) Frac() float64 {
	if len(m.Keep) == 0 {
		return 1
	}
	return float64(m.Kept) / float64(len(m.Keep))
}

// FullMask keeps every channel.
func FullMask(n int) Mask {
	k := Mask{Keep: make([]bool, n), Kept: n}
	for i := range k.Keep {
		k.Keep[i] = true
	}
	return k
}

// ChannelScores returns each output channel's L1 norm (the salience
// criterion used by the selection agent's action decoding).
func ChannelScores(c *nn.Conv2D) []float64 {
	w := c.Weight().W
	rows, cols := w.Dim(0), w.Dim(1)
	scores := make([]float64, rows)
	for r := 0; r < rows; r++ {
		var s float64
		for j := 0; j < cols; j++ {
			v := float64(w.Data[r*cols+j])
			s += math.Abs(v)
		}
		scores[r] = s
	}
	return scores
}

// MaskFromScores keeps the ceil(ratio·C) highest-scoring channels
// (always at least one). NaN scores are normalized to -Inf before
// ranking: NaN breaks scoreLess's total order (NaN compares unequal
// yet not greater, so two NaN channels would be mutually unordered and
// the selection would depend on partition internals) — normalized, a
// NaN channel is never salient unless the keep count forces it, and
// ties resolve by index as everywhere else.
func MaskFromScores(scores []float64, ratio float64) Mask {
	n := len(scores)
	keep := int(math.Ceil(ratio * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	normalized := false
	for i, s := range scores {
		if math.IsNaN(s) {
			if !normalized {
				scores = append([]float64(nil), scores...)
				normalized = true
			}
			scores[i] = math.Inf(-1)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	topKSelect(order, scores, keep)
	m := Mask{Keep: make([]bool, n)}
	for _, i := range order[:keep] {
		m.Keep[i] = true
	}
	m.Kept = keep
	return m
}

// scoreLess reports whether channel a precedes channel b in the saliency
// order: higher score first, lower index breaking ties. Because every
// channel index is distinct the order is total, so the top-k set is
// unique — selection cannot depend on sort internals, and the quickselect
// below reproduces exactly what the stable descending sort it replaced
// selected.
func scoreLess(scores []float64, a, b int) bool {
	if scores[a] != scores[b] {
		return scores[a] > scores[b]
	}
	return a < b
}

// topKSelect partially partitions order (a permutation of channel
// indices) so its first k elements are the k channels ranked highest by
// scoreLess. Median-of-three Hoare quickselect with an insertion-sort
// cutoff: expected O(n) versus the O(n log n) full sort, with entirely
// deterministic pivot choices.
func topKSelect(order []int, scores []float64, k int) {
	lo, hi := 0, len(order)
	for {
		if k <= lo || k >= hi || hi-lo <= 1 {
			return
		}
		if hi-lo <= 16 {
			for i := lo + 1; i < hi; i++ {
				for j := i; j > lo && scoreLess(scores, order[j], order[j-1]); j-- {
					order[j], order[j-1] = order[j-1], order[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if scoreLess(scores, order[mid], order[lo]) {
			order[lo], order[mid] = order[mid], order[lo]
		}
		if scoreLess(scores, order[hi-1], order[lo]) {
			order[lo], order[hi-1] = order[hi-1], order[lo]
		}
		if scoreLess(scores, order[hi-1], order[mid]) {
			order[mid], order[hi-1] = order[hi-1], order[mid]
		}
		pivot := order[mid]
		i, j := lo, hi-1
		for i <= j {
			for scoreLess(scores, order[i], pivot) {
				i++
			}
			for scoreLess(scores, pivot, order[j]) {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		// order[lo:j+1] precede order[i:hi]; anything strictly between is
		// already in its final position.
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

// Selection is a complete salient-parameter selection over a model's
// encoder: per-unit channel masks plus the index ranges of the selected
// (salient) entries in the flat ScopeEncoder state vector. The ranges
// are what a SPATL client uploads alongside the values (eq. 12).
type Selection struct {
	Units  []models.PrunableUnit
	Masks  []Mask
	Ranges []comm.Range
	// StateLen is the full encoder state length the ranges index into.
	StateLen int
}

// KeepFrac returns the fraction of encoder state elements selected.
func (s *Selection) KeepFrac() float64 {
	kept := 0
	for _, r := range s.Ranges {
		kept += int(r.Len)
	}
	return float64(kept) / float64(s.StateLen)
}

// Ratios returns the per-unit kept fractions.
func (s *Selection) Ratios() []float64 {
	out := make([]float64, len(s.Masks))
	for i, m := range s.Masks {
		out[i] = m.Frac()
	}
	return out
}

// Select builds the salient selection for the given per-unit keep
// ratios: within each prunable unit the top-L1 channels survive; every
// encoder state element not owned by a pruned channel is salient.
func Select(m *models.SplitModel, ratios []float64) *Selection {
	units := m.PrunableUnits()
	if len(ratios) != len(units) {
		panic(fmt.Sprintf("prune: %d ratios for %d prunable units", len(ratios), len(units)))
	}
	masks := make([]Mask, len(units))
	for i, u := range units {
		masks[i] = MaskFromScores(ChannelScores(u.Conv), ratios[i])
	}
	return SelectWithMasks(m, masks)
}

// SelectWithMasks builds a Selection from explicit per-unit masks.
func SelectWithMasks(m *models.SplitModel, masks []Mask) *Selection {
	units := m.PrunableUnits()
	if len(masks) != len(units) {
		panic(fmt.Sprintf("prune: %d masks for %d prunable units", len(masks), len(units)))
	}
	total := m.StateLen(models.ScopeEncoder)
	salient := make([]bool, total)
	for i := range salient {
		salient[i] = true
	}
	paramSeg, bnSeg := m.EncoderOffsets()

	markFalse := func(off, n int) {
		for i := off; i < off+n; i++ {
			salient[i] = false
		}
	}
	// Selection gates the filter weight tensors only: the per-channel
	// scalars (conv bias, BN affine and running statistics) always ship.
	// They are a negligible fraction of the payload — the paper's
	// "negligible burdens" — and keeping them synchronized lets the
	// global model's non-salient channels stay correctly normalized
	// instead of freezing at initialization statistics.
	_ = bnSeg
	for ui, u := range units {
		mask := masks[ui]
		w := u.Conv.Weight()
		wSeg := paramSeg[w.W]
		rowLen := w.W.Dim(1)
		var nextSeg models.Segment
		var nextRow, kk int
		if u.Next != nil {
			nw := u.Next.Weight()
			nextSeg = paramSeg[nw.W]
			nextRow = nw.W.Dim(1)
			kk = u.Next.K * u.Next.K
		}
		for ch, keep := range mask.Keep {
			if keep {
				continue
			}
			markFalse(wSeg.Off+ch*rowLen, rowLen)
			if u.Next != nil {
				// Input-channel column group ch of every output row.
				for r := 0; r < u.Next.OutC; r++ {
					markFalse(nextSeg.Off+r*nextRow+ch*kk, kk)
				}
			}
		}
	}

	sel := &Selection{Units: units, Masks: masks, StateLen: total}
	// Compress the salience bitmap into maximal ranges.
	i := 0
	for i < total {
		if !salient[i] {
			i++
			continue
		}
		j := i
		for j < total && salient[j] {
			j++
		}
		sel.Ranges = append(sel.Ranges, comm.Range{Start: uint32(i), Len: uint32(j - i)})
		i = j
	}
	return sel
}

// ZeroPruned permanently zeroes the pruned channels' parameters (conv
// rows, bias, BN affine) so the model behaves as the selected
// sub-network. This is the deployed form of a SPATL client's model: the
// selection both gates the upload and prunes local inference (§V-D).
func ZeroPruned(m *models.SplitModel, sel *Selection) {
	for ui, u := range sel.Units {
		mask := sel.Masks[ui]
		w := u.Conv.Weight().W
		rowLen := w.Dim(1)
		var bias []float32
		if ps := u.Conv.Params(); len(ps) > 1 {
			bias = ps[1].W.Data
		}
		var gamma, beta []float32
		if u.BN != nil {
			gamma = u.BN.Params()[0].W.Data
			beta = u.BN.Params()[1].W.Data
		}
		for ch, keep := range mask.Keep {
			if keep {
				continue
			}
			row := w.Data[ch*rowLen : (ch+1)*rowLen]
			for j := range row {
				row[j] = 0
			}
			if bias != nil {
				bias[ch] = 0
			}
			if gamma != nil {
				gamma[ch] = 0
				beta[ch] = 0
			}
		}
		// Direct Data writes above: invalidate packed-weight caches.
		u.Conv.Weight().Bump()
		if ps := u.Conv.Params(); len(ps) > 1 {
			ps[1].Bump()
		}
		if u.BN != nil {
			u.BN.Params()[0].Bump()
			u.BN.Params()[1].Bump()
		}
	}
}

// WithMasked temporarily zeroes the pruned channels' parameters so the
// model behaves as the selected sub-network, runs fn, then restores the
// original weights. Used to score candidate selections (the RL reward,
// eq. 7) without committing.
func WithMasked(m *models.SplitModel, sel *Selection, fn func()) {
	type saved struct {
		p    *nn.Param
		copy []float32
	}
	var saves []saved
	stash := func(p *nn.Param) {
		cp := make([]float32, len(p.W.Data))
		copy(cp, p.W.Data)
		saves = append(saves, saved{p: p, copy: cp})
	}
	for _, u := range sel.Units {
		stash(u.Conv.Weight())
		if ps := u.Conv.Params(); len(ps) > 1 {
			stash(ps[1])
		}
		if u.BN != nil {
			stash(u.BN.Params()[0])
			stash(u.BN.Params()[1])
		}
	}
	defer func() {
		for _, s := range saves {
			copy(s.p.W.Data, s.copy)
			s.p.Bump()
		}
	}()
	ZeroPruned(m, sel)
	fn()
}

// MaskedFLOPs returns the per-instance forward FLOPs of the selected
// sub-network and of the full model. Convolution costs scale with the
// kept output fraction and, for consumer convolutions, the kept input
// fraction; BatchNorm scales with its channel fraction; other layers are
// charged in full (conservative).
func MaskedFLOPs(m *models.SplitModel, masks []Mask) (pruned, total int64) {
	m.Describe()
	units := m.PrunableUnits()
	outMult := map[*nn.Conv2D]float64{}
	inMult := map[*nn.Conv2D]float64{}
	bnMult := map[*nn.BatchNorm2D]float64{}
	for i, u := range units {
		f := masks[i].Frac()
		outMult[u.Conv] = f
		if u.Next != nil {
			inMult[u.Next] = f
		}
		if u.BN != nil {
			bnMult[u.BN] = f
		}
	}
	nn.Walk(m.Encoder, func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv2D:
			f := v.FLOPs()
			total += f
			mult := 1.0
			if o, ok := outMult[v]; ok {
				mult *= o
			}
			if in, ok := inMult[v]; ok {
				mult *= in
			}
			pruned += int64(float64(f) * mult)
		case *nn.BatchNorm2D:
			f := v.FLOPs()
			total += f
			mult := 1.0
			if b, ok := bnMult[v]; ok {
				mult = b
			}
			pruned += int64(float64(f) * mult)
		case *nn.Sequential, *nn.BasicBlock:
			// Composites are expanded by Walk; skip their aggregate FLOPs.
		default:
			f := l.FLOPs()
			total += f
			pruned += f
		}
	})
	pf := m.Predictor.FLOPs()
	total += pf
	pruned += pf
	return pruned, total
}
