package prune

import (
	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/graph"
	"spatl/internal/models"
)

// Env is the network-pruning reinforcement-learning environment of
// §IV-B1: the state is the model's computational graph, the action is
// the per-unit keep-ratio vector, and the reward is the selected
// sub-network's validation accuracy (eq. 7), penalized when the analytic
// FLOPs ratio exceeds the budget — the "size constraint" of the search
// loop.
type Env struct {
	Model *models.SplitModel
	Val   *data.Dataset
	// FLOPsBudget is the allowed pruned/total FLOPs ratio (e.g. 0.6).
	FLOPsBudget float64
	// Penalty scales the constraint violation term. Default 2.
	Penalty float64

	// LastSelection is the selection evaluated by the most recent Step.
	LastSelection *Selection
	// LastAcc and LastFLOPsRatio expose the components of the last reward.
	LastAcc        float64
	LastFLOPsRatio float64
}

// NewEnv constructs a pruning environment.
func NewEnv(m *models.SplitModel, val *data.Dataset, budget float64) *Env {
	return &Env{Model: m, Val: val, FLOPsBudget: budget, Penalty: 2}
}

// State implements rl.Environment: the graph is rebuilt each call so
// edge weight statistics reflect the model's current parameters.
func (e *Env) State() *graph.Graph { return graph.FromEncoder(e.Model) }

// Step implements rl.Environment.
func (e *Env) Step(action []float64) float64 {
	sel := Select(e.Model, action)
	e.LastSelection = sel
	pr, tot := MaskedFLOPs(e.Model, sel.Masks)
	e.LastFLOPsRatio = float64(pr) / float64(tot)
	WithMasked(e.Model, sel, func() {
		e.LastAcc = eval.Accuracy(e.Model, e.Val, 64)
	})
	r := e.LastAcc
	if e.LastFLOPsRatio > e.FLOPsBudget {
		r -= e.Penalty * (e.LastFLOPsRatio - e.FLOPsBudget)
	}
	return r
}
