package prune

import (
	"math"
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// L1Masks prunes every unit to the same keep ratio using L1-magnitude
// ranking — the classic uniform magnitude baseline.
func L1Masks(m *models.SplitModel, ratio float64) []Mask {
	units := m.PrunableUnits()
	masks := make([]Mask, len(units))
	for i, u := range units {
		masks[i] = MaskFromScores(ChannelScores(u.Conv), ratio)
	}
	return masks
}

// FPGMMasks ranks filters by their total distance to the other filters
// in the layer (filters near the geometric median are redundant — He et
// al., CVPR'19) and prunes the most redundant ones at a uniform ratio.
func FPGMMasks(m *models.SplitModel, ratio float64) []Mask {
	units := m.PrunableUnits()
	masks := make([]Mask, len(units))
	for i, u := range units {
		w := u.Conv.Weight().W
		rows, cols := w.Dim(0), w.Dim(1)
		scores := make([]float64, rows)
		for a := 0; a < rows; a++ {
			var total float64
			ra := w.Data[a*cols : (a+1)*cols]
			for b := 0; b < rows; b++ {
				if a == b {
					continue
				}
				rb := w.Data[b*cols : (b+1)*cols]
				var d float64
				for j := range ra {
					diff := float64(ra[j] - rb[j])
					d += diff * diff
				}
				total += math.Sqrt(d)
			}
			scores[a] = total // far from the median ⇒ informative ⇒ keep
		}
		masks[i] = MaskFromScores(scores, ratio)
	}
	return masks
}

// SFP implements soft filter pruning (He et al., IJCAI'18): the model
// trains for several epochs, and after every epoch the lowest-L2 filters
// of each unit are softly zeroed but remain trainable so they can
// recover. The final mask is returned alongside the trained model state.
func SFP(m *models.SplitModel, train *data.Dataset, ratio float64, epochs int, lr float64, rng *rand.Rand) []Mask {
	params := m.Params()
	opt := nn.NewSGD(params, lr, 0.9, 0)
	units := m.PrunableUnits()
	var masks []Mask
	for e := 0; e < epochs; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			out := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			m.Backward(grad)
			opt.Step()
		}
		// Soft-prune: zero the weakest filters (L2) but keep training them.
		masks = masks[:0]
		for _, u := range units {
			w := u.Conv.Weight().W
			rows, cols := w.Dim(0), w.Dim(1)
			scores := make([]float64, rows)
			for r := 0; r < rows; r++ {
				var s float64
				for j := 0; j < cols; j++ {
					v := float64(w.Data[r*cols+j])
					s += v * v
				}
				scores[r] = s
			}
			mask := MaskFromScores(scores, ratio)
			for ch, keep := range mask.Keep {
				if keep {
					continue
				}
				row := w.Data[ch*cols : (ch+1)*cols]
				for j := range row {
					row[j] = 0
				}
			}
			u.Conv.Weight().Bump() // direct Data writes above
			masks = append(masks, mask)
		}
	}
	return masks
}

// DSAMasks performs a differentiable-sparsity-allocation-style budget
// split: each unit's sensitivity is probed by pruning it alone to a
// probe ratio and measuring the validation accuracy drop; keep ratios
// are then allocated so sensitive layers keep more channels, scaled
// until the analytic FLOPs budget is met.
func DSAMasks(m *models.SplitModel, val *data.Dataset, flopsBudget float64) []Mask {
	units := m.PrunableUnits()
	base := eval.Accuracy(m, val, 64)
	sens := make([]float64, len(units))
	for i := range units {
		probe := make([]float64, len(units))
		for j := range probe {
			probe[j] = 1
		}
		probe[i] = 0.5
		sel := Select(m, probe)
		var acc float64
		WithMasked(m, sel, func() { acc = eval.Accuracy(m, val, 64) })
		sens[i] = math.Max(0, base-acc)
	}
	// Normalize sensitivities to [0,1]; allocate keep = lo + (1-lo)·s.
	maxS := 0.0
	for _, s := range sens {
		if s > maxS {
			maxS = s
		}
	}
	ratios := make([]float64, len(units))
	// Binary-search a floor so that the analytic FLOPs ratio meets the
	// budget.
	lo, hi := 0.05, 1.0
	for iter := 0; iter < 25; iter++ {
		mid := (lo + hi) / 2
		for i := range ratios {
			s := 0.0
			if maxS > 0 {
				s = sens[i] / maxS
			}
			ratios[i] = mid + (1-mid)*s
		}
		sel := Select(m, ratios)
		pr, tot := MaskedFLOPs(m, sel.Masks)
		if float64(pr)/float64(tot) > flopsBudget {
			hi = mid
		} else {
			lo = mid
		}
	}
	for i := range ratios {
		s := 0.0
		if maxS > 0 {
			s = sens[i] / maxS
		}
		ratios[i] = lo + (1-lo)*s
	}
	return Select(m, ratios).Masks
}

// FineTune retrains the model for the given epochs while pinning pruned
// channels to zero (weights zeroed after every step), recovering accuracy
// of the selected sub-network.
func FineTune(m *models.SplitModel, sel *Selection, train *data.Dataset, epochs int, lr float64, rng *rand.Rand) {
	params := m.Params()
	opt := nn.NewSGD(params, lr, 0.9, 0)
	pin := func() {
		for ui, u := range sel.Units {
			mask := sel.Masks[ui]
			w := u.Conv.Weight().W
			rowLen := w.Dim(1)
			var bias []float32
			if ps := u.Conv.Params(); len(ps) > 1 {
				bias = ps[1].W.Data
			}
			var gamma, beta []float32
			if u.BN != nil {
				gamma = u.BN.Params()[0].W.Data
				beta = u.BN.Params()[1].W.Data
			}
			for ch, keep := range mask.Keep {
				if keep {
					continue
				}
				row := w.Data[ch*rowLen : (ch+1)*rowLen]
				for j := range row {
					row[j] = 0
				}
				if bias != nil {
					bias[ch] = 0
				}
				if gamma != nil {
					gamma[ch] = 0
					beta[ch] = 0
				}
			}
			// Direct Data writes above: invalidate packed-weight caches.
			u.Conv.Weight().Bump()
			if ps := u.Conv.Params(); len(ps) > 1 {
				ps[1].Bump()
			}
			if u.BN != nil {
				u.BN.Params()[0].Bump()
				u.BN.Params()[1].Bump()
			}
		}
	}
	pin()
	for e := 0; e < epochs; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			out := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			m.Backward(grad)
			opt.Step()
			pin()
		}
	}
}

// UniformRatiosForBudget searches the uniform keep ratio whose analytic
// FLOPs ratio best matches the budget — used to put baselines and the
// agent at matched budgets for Table IV.
func UniformRatiosForBudget(m *models.SplitModel, flopsBudget float64) float64 {
	lo, hi := 0.05, 1.0
	for iter := 0; iter < 25; iter++ {
		mid := (lo + hi) / 2
		masks := L1Masks(m, mid)
		pr, tot := MaskedFLOPs(m, masks)
		if float64(pr)/float64(tot) > flopsBudget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}
