package flnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/netsim"
	"spatl/internal/telemetry"
)

// Two-level aggregation tree. A flat server owns one TCP connection, one
// reader goroutine and one frame per sampled client per round — at 10k+
// sampled clients the root drowns in per-connection work (accepts, read
// deadlines, tiny frame reads) long before the arithmetic matters. The
// tree moves that work to edge aggregators: clients register with an
// edge, the edge collects their uploads for the round and forwards ONE
// pooled shard payload (algo.ShardBuffer wire format) to the root. The
// root handles NumShards connections instead of NumClients, and folds
// the pooled payloads in fixed shard-ID order — bitwise identical to
// the flat reduce (see internal/algo/shard.go for the contract).
//
// Topology invariant: every edge owns a contiguous range of the global
// client-ID order (shard 0 the lowest IDs, and so on). Because round
// selections are sorted ascending, shard-major processing order equals
// flat selection order, which is what makes the fold — and the journal
// event sequence — identical to the in-process sharded simulator.
//
// Edge aggregators emit no journal events; the root owns the journal.
// Client-facing traffic is metered in comm up/down exactly as the flat
// transports meter it, and the tree's own hop (pooled shard payloads
// up, broadcasts to edges down) is attributed to the meter's relay
// counters — so client-facing byte counts still match cross-transport.

// treeClient is the root's view of one client registered via an edge.
type treeClient struct {
	id        uint32
	trainSize int
	shard     int
}

// edgeConn is the root's view of one registered edge aggregator.
type edgeConn struct {
	shard   int
	conn    net.Conn
	clients []treeClient
	alive   bool
}

func (e *edgeConn) markDead() {
	if e.alive {
		e.alive = false
		e.conn.Close()
	}
}

// TreeServerConfig configures the root of a two-level aggregation tree.
type TreeServerConfig struct {
	// Addr to listen on; ":0" picks a free port.
	Addr string
	// Shards is the number of edge aggregators to wait for.
	Shards int
	// Clients is the total number of clients across all edges.
	Clients int
	// Rounds of federated training to run.
	Rounds int
	// PerRound is how many clients participate each round (0 = all).
	PerRound int
	// Seed drives client sampling (same derivation as the flat server).
	Seed int64

	// HelloTimeout bounds an accepted edge's registration frame.
	HelloTimeout time.Duration
	// StragglerTimeout bounds the wait for an edge's pooled shard
	// payload; an edge that misses it is marked dead and its whole
	// shard's contribution dropped for the round (shard_drop). Zero
	// waits forever.
	StragglerTimeout time.Duration
	// WriteTimeout bounds each broadcast write to an edge.
	WriteTimeout time.Duration

	// Tel receives the root's journal events and counters; nil disables.
	Tel *telemetry.Set
}

// TreeServer is the root of a two-level aggregation tree.
type TreeServer struct {
	cfg TreeServerConfig
	ln  net.Listener

	edges   []*edgeConn
	clients []treeClient // global client order: ascending ID, contiguous per shard
	meter   comm.Meter

	drops      telemetry.Counter
	errs       telemetry.Counter
	shardDrops []telemetry.Counter // per-shard dropped contributions
}

// NewTreeServer starts listening (so edges can connect before Run).
func NewTreeServer(cfg TreeServerConfig) (*TreeServer, error) {
	if cfg.Shards <= 0 || cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: Shards, Clients and Rounds must be positive")
	}
	if cfg.PerRound <= 0 || cfg.PerRound > cfg.Clients {
		cfg.PerRound = cfg.Clients
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &TreeServer{cfg: cfg, ln: ln, shardDrops: make([]telemetry.Counter, cfg.Shards)}
	if cfg.Tel != nil && cfg.Tel.Reg != nil {
		cfg.Tel.Reg.Attach("flnet.drops", &s.drops)
		cfg.Tel.Reg.Attach("flnet.errors", &s.errs)
		for i := range s.shardDrops {
			cfg.Tel.Reg.Attach(fmt.Sprintf("flnet.shard.%d.drops", i), &s.shardDrops[i])
		}
		s.meter.Bind(cfg.Tel.Reg, "comm")
	}
	return s, nil
}

// Addr returns the listening address (use after NewTreeServer with ":0").
func (s *TreeServer) Addr() string { return s.ln.Addr().String() }

// Drops reports total dropped client contributions across all rounds.
func (s *TreeServer) Drops() int64 { return s.drops.Value() }

// ShardDrops reports dropped contributions attributed to one shard.
func (s *TreeServer) ShardDrops(shard int) int64 { return s.shardDrops[shard].Value() }

// Meter exposes the root's traffic meter (client-facing up/down plus
// the tree's relay counters).
func (s *TreeServer) Meter() *comm.Meter { return &s.meter }

// acceptEdges collects the edge registrations and builds the global
// client table, enforcing the contiguous-shard topology invariant.
func (s *TreeServer) acceptEdges() error {
	s.edges = make([]*edgeConn, s.cfg.Shards)
	seen := 0
	for seen < s.cfg.Shards {
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("flnet: accept edge: %w", err)
		}
		if s.cfg.HelloTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != MsgEdgeHello || len(f.Payload) < 4 {
			conn.Close()
			f.Release()
			return fmt.Errorf("flnet: bad edge hello from %s: %v", conn.RemoteAddr(), err)
		}
		conn.SetReadDeadline(time.Time{})
		shard := int(f.Client)
		if shard < 0 || shard >= s.cfg.Shards || s.edges[shard] != nil {
			conn.Close()
			f.Release()
			return fmt.Errorf("flnet: duplicate or out-of-range shard %d", shard)
		}
		k := int(binary.LittleEndian.Uint32(f.Payload[:4]))
		if len(f.Payload) != 4+8*k {
			conn.Close()
			f.Release()
			return fmt.Errorf("flnet: edge hello for shard %d: %d clients but %d payload bytes", shard, k, len(f.Payload))
		}
		e := &edgeConn{shard: shard, conn: conn, alive: true}
		for i := 0; i < k; i++ {
			off := 4 + 8*i
			e.clients = append(e.clients, treeClient{
				id:        binary.LittleEndian.Uint32(f.Payload[off : off+4]),
				trainSize: int(binary.LittleEndian.Uint32(f.Payload[off+4 : off+8])),
				shard:     shard,
			})
		}
		f.Release()
		sort.Slice(e.clients, func(i, j int) bool { return e.clients[i].id < e.clients[j].id })
		s.edges[shard] = e
		seen++
	}
	s.clients = s.clients[:0]
	for _, e := range s.edges {
		s.clients = append(s.clients, e.clients...)
	}
	if len(s.clients) != s.cfg.Clients {
		return fmt.Errorf("flnet: edges registered %d clients, want %d", len(s.clients), s.cfg.Clients)
	}
	for i := 1; i < len(s.clients); i++ {
		if s.clients[i].id <= s.clients[i-1].id {
			return fmt.Errorf("flnet: shard client IDs must be globally ascending and contiguous per shard (client %d after %d)",
				s.clients[i].id, s.clients[i-1].id)
		}
	}
	return nil
}

// shardSpan returns the half-open range of positions in the sorted
// selection that belong to shard sh, advancing from position lo.
func (s *TreeServer) shardSpan(selected []int, lo, sh int) (int, int) {
	hi := lo
	for hi < len(selected) && s.clients[selected[hi]].shard == sh {
		hi++
	}
	return lo, hi
}

// Run accepts edge registrations, executes the round loop and broadcasts
// the final model through the edges. A vanished edge degrades to
// shard-scoped drops — the root keeps federating on the surviving
// shards — and Run errors only when every edge is dead.
func (s *TreeServer) Run(agg Aggregator) error {
	defer s.ln.Close()
	if err := s.acceptEdges(); err != nil {
		return err
	}
	defer func() {
		for _, e := range s.edges {
			e.conn.Close()
		}
	}()
	tel := s.cfg.Tel
	algo.Wire(tel, agg)
	streamAgg, _ := agg.(algo.StreamingAggregator)
	rng := newRng(s.cfg.Seed)
	selBuf := make([]byte, 0, 4*s.cfg.PerRound)
	for round := 0; round < s.cfg.Rounds; round++ {
		payload := agg.Broadcast(round)
		selected := samplePerm(rng, len(s.clients), s.cfg.PerRound)
		if streamAgg != nil {
			ids := make([]uint32, len(selected))
			for i, ci := range selected {
				ids[i] = s.clients[ci].id
			}
			streamAgg.BeginRound(round, ids)
		}
		tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))
		roundStart := time.Now()

		// Fan the broadcast out: one pooled round-start per live edge,
		// carrying that shard's selection list and the model payload.
		awaiting := make([]bool, s.cfg.Shards)
		spans := make([][2]int, s.cfg.Shards)
		pos := 0
		for sh, e := range s.edges {
			lo, hi := s.shardSpan(selected, pos, sh)
			pos = hi
			spans[sh] = [2]int{lo, hi}
			n := hi - lo
			if n == 0 {
				continue
			}
			s.meter.AddDown(n * len(payload)) // client-facing broadcast volume
			if !e.alive {
				continue
			}
			selBuf = selBuf[:0]
			for p := lo; p < hi; p++ {
				var idb [4]byte
				binary.LittleEndian.PutUint32(idb[:], s.clients[selected[p]].id)
				selBuf = append(selBuf, idb[:]...)
			}
			joined := comm.JoinPayloads(selBuf, payload)
			if s.cfg.WriteTimeout > 0 {
				e.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			f := Frame{Type: MsgRoundStart, Client: uint32(sh), Round: uint32(round), Payload: joined}
			if err := WriteFrame(e.conn, f); err != nil {
				s.errs.Inc()
				e.markDead()
				continue
			}
			s.meter.AddRelayDown(len(payload))
			awaiting[sh] = true
		}

		// Collect pooled shard payloads concurrently — NumShards reader
		// goroutines, not NumClients — and fold opportunistically behind a
		// shard cursor: shard k is processed (and its frame released) the
		// moment shards 0..k have all resolved, so the root holds frames
		// only for shards that arrive ahead of the cursor instead of one
		// per shard per round. Cursor order IS shard-ID order, so journal
		// events and the fold sequence are byte-identical to the buffered
		// pass, and with a streaming aggregator the per-entry folds land
		// in ascending client order — zero staging.
		type result struct {
			shard int
			frame Frame
			err   error
		}
		results := make(chan result, s.cfg.Shards)
		inflight := 0
		for sh, e := range s.edges {
			if !awaiting[sh] {
				continue
			}
			inflight++
			if s.cfg.StragglerTimeout > 0 {
				e.conn.SetReadDeadline(time.Now().Add(s.cfg.StragglerTimeout))
			}
			go func(sh int, e *edgeConn) {
				f, err := ReadFrame(e.conn)
				results <- result{shard: sh, frame: f, err: err}
			}(sh, e)
		}
		frames := make([]*Frame, s.cfg.Shards)
		resolved := make([]bool, s.cfg.Shards)
		for sh := range s.edges {
			if !awaiting[sh] {
				resolved[sh] = true // empty shard, dead edge or failed write
			}
		}
		collected := 0
		var entries []algo.Upload
		processShard := func(sh int) {
			lo, hi := spans[sh][0], spans[sh][1]
			n := hi - lo
			if n == 0 {
				return
			}
			if frames[sh] == nil {
				// The whole shard vanished: one shard_drop event carrying
				// the count, attributed per shard in the registry — the
				// root degrades instead of stalling.
				if streamAgg != nil {
					for p := lo; p < hi; p++ {
						streamAgg.MarkAbsent(round, s.clients[selected[p]].id)
					}
				}
				tel.Emit(telemetry.ShardDrop(round, sh, n))
				s.drops.Add(int64(n))
				s.shardDrops[sh].Add(int64(n))
				return
			}
			var err error
			entries, err = algo.ShardEntries(entries[:0], frames[sh].Payload)
			if err != nil {
				s.errs.Inc()
			}
			// Walk the shard's selection against the (subsequence of)
			// entries the edge pooled, emitting client events in
			// selection order — the flat server's order.
			kept := entries[:0]
			ei := 0
			for p := lo; p < hi; p++ {
				c := s.clients[selected[p]]
				if ei < len(entries) && entries[ei].Client == c.id {
					u := entries[ei]
					u.TrainSize = c.trainSize // hello table is authoritative
					kept = append(kept, u)
					s.meter.AddUp(len(u.Payload))
					tel.Emit(telemetry.ClientUpload(round, int(c.id), int64(len(u.Payload)), time.Since(roundStart).Nanoseconds()))
					ei++
					continue
				}
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
				tel.Emit(telemetry.Drop(round, int(c.id)))
				s.drops.Inc()
				s.shardDrops[sh].Inc()
			}
			if ei != len(entries) {
				s.errs.Inc() // edge pooled clients the root never selected
			}
			s.meter.AddRelayUp(len(frames[sh].Payload))
			tel.Emit(telemetry.ShardPush(round, sh, len(kept), int64(len(frames[sh].Payload))))
			algo.CollectAll(agg, round, kept)
			collected += len(kept)
			frames[sh].Release()
			frames[sh] = nil
		}
		nextShard := 0
		processUpTo := func() {
			for nextShard < s.cfg.Shards && resolved[nextShard] {
				processShard(nextShard)
				nextShard++
			}
		}
		processUpTo()
		for ; inflight > 0; inflight-- {
			r := <-results
			e := s.edges[r.shard]
			switch {
			case r.err != nil:
				var ne net.Error
				if !errors.As(r.err, &ne) || !ne.Timeout() {
					s.errs.Inc()
				}
				e.markDead()
			case r.frame.Type != MsgShardUpdate || int(r.frame.Round) != round || int(r.frame.Client) != r.shard:
				s.errs.Inc()
				e.markDead()
				r.frame.Release()
			default:
				e.conn.SetReadDeadline(time.Time{})
				f := r.frame
				frames[r.shard] = &f
			}
			resolved[r.shard] = true
			processUpTo()
		}
		t0 := time.Now()
		agg.FinishRound(round)
		tel.Emit(telemetry.Aggregate(round, collected, time.Since(t0).Nanoseconds()))
		tel.Emit(telemetry.RoundEnd(round, s.meter.Up(), s.meter.Down()))

		anyAlive := false
		for _, e := range s.edges {
			if e.alive {
				anyAlive = true
				break
			}
		}
		if !anyAlive {
			return fmt.Errorf("flnet: all %d edges dead after round %d", len(s.edges), round)
		}
	}

	final := agg.Final()
	for _, e := range s.edges {
		if !e.alive {
			continue
		}
		if s.cfg.WriteTimeout > 0 {
			e.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := WriteFrame(e.conn, Frame{Type: MsgDone, Client: uint32(e.shard), Payload: final}); err != nil {
			s.errs.Inc()
			e.markDead()
			continue
		}
		s.meter.AddRelayDown(len(final))
		s.meter.AddDown(len(e.clients) * len(final))
	}
	return nil
}

// EdgeConfig configures one edge aggregator.
type EdgeConfig struct {
	// Addr to listen on for this shard's clients; ":0" picks a port.
	Addr string
	// Clients is how many client registrations to wait for.
	Clients int
	// RootAddr is the tree root to report to.
	RootAddr string
	// Shard is this edge's shard ID (its clients must own a contiguous
	// range of the global client-ID order; the root enforces it).
	Shard uint32

	// DialTimeout bounds the TCP connect to the root (default 30s).
	DialTimeout time.Duration
	// HelloTimeout bounds each client's registration frame.
	HelloTimeout time.Duration
	// Churn, when set with a positive probability, makes the edge crash
	// (close every connection and return) at the start of the first
	// round for which Churn.Fails(round, shard) reports true —
	// deterministic failure injection for degradation tests. The root
	// keeps federating: the shard's contributions become shard_drop
	// events, not a stalled federation.
	Churn netsim.Churn
	// StragglerTimeout bounds the wait for one client's upload; a
	// straggler is omitted from the pooled shard payload (the root
	// records the drop). Zero waits forever.
	StragglerTimeout time.Duration
	// WriteTimeout bounds each broadcast write to a client.
	WriteTimeout time.Duration
}

// Edge is one edge aggregator: a server to its shard's clients and a
// client of the tree root. It pools uploads with algo.ShardBuffer and
// forwards one frame per round; it emits no journal events (the root
// owns the journal).
type Edge struct {
	cfg     EdgeConfig
	ln      net.Listener
	clients []*clientConn

	// Drops counts contributions this edge could not pool (dead client,
	// straggler, I/O error); the root sees them as drop events.
	Drops int64
}

// NewEdge starts listening for the shard's clients.
func NewEdge(cfg EdgeConfig) (*Edge, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("flnet: edge needs a positive client count")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Edge{cfg: cfg, ln: ln}, nil
}

// Addr returns the client-facing listening address.
func (e *Edge) Addr() string { return e.ln.Addr().String() }

// Run accepts the shard's clients, registers with the root and relays
// rounds until the root sends the final model (forwarded to every
// surviving client) or the root connection fails.
func (e *Edge) Run() error {
	defer e.ln.Close()
	for len(e.clients) < e.cfg.Clients {
		conn, err := e.ln.Accept()
		if err != nil {
			return fmt.Errorf("flnet: edge %d accept: %w", e.cfg.Shard, err)
		}
		if e.cfg.HelloTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(e.cfg.HelloTimeout))
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != MsgHello || len(f.Payload) < 4 {
			conn.Close()
			f.Release()
			return fmt.Errorf("flnet: edge %d: bad hello: %v", e.cfg.Shard, err)
		}
		conn.SetReadDeadline(time.Time{})
		e.clients = append(e.clients, &clientConn{
			id:        f.Client,
			trainSize: int(binary.LittleEndian.Uint32(f.Payload)),
			conn:      conn,
			alive:     true,
		})
		f.Release()
	}
	defer func() {
		for _, c := range e.clients {
			c.conn.Close()
		}
	}()
	sort.Slice(e.clients, func(i, j int) bool { return e.clients[i].id < e.clients[j].id })
	byID := make(map[uint32]*clientConn, len(e.clients))
	for _, c := range e.clients {
		byID[c.id] = c
	}

	root, err := net.DialTimeout("tcp", e.cfg.RootAddr, e.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("flnet: edge %d dial root: %w", e.cfg.Shard, err)
	}
	defer root.Close()
	hello := make([]byte, 4+8*len(e.clients))
	binary.LittleEndian.PutUint32(hello[:4], uint32(len(e.clients)))
	for i, c := range e.clients {
		off := 4 + 8*i
		binary.LittleEndian.PutUint32(hello[off:off+4], c.id)
		binary.LittleEndian.PutUint32(hello[off+4:off+8], uint32(c.trainSize))
	}
	if err := WriteFrame(root, Frame{Type: MsgEdgeHello, Client: e.cfg.Shard, Payload: hello}); err != nil {
		return fmt.Errorf("flnet: edge %d hello: %w", e.cfg.Shard, err)
	}

	var sb algo.ShardBuffer
	for {
		rf, err := ReadFrame(root)
		if err != nil {
			return fmt.Errorf("flnet: edge %d root read: %w", e.cfg.Shard, err)
		}
		switch rf.Type {
		case MsgRoundStart:
			if e.cfg.Churn.Fails(int(rf.Round), int(e.cfg.Shard)) {
				rf.Release()
				return fmt.Errorf("flnet: edge %d churned out at round %d", e.cfg.Shard, rf.Round)
			}
			parts, err := comm.SplitPayloads(rf.Payload)
			if err != nil || len(parts) != 2 || len(parts[0])%4 != 0 {
				rf.Release()
				return fmt.Errorf("flnet: edge %d: malformed round start: %v", e.cfg.Shard, err)
			}
			sel, bcast := parts[0], parts[1]
			round := rf.Round
			// Forward the broadcast to each selected, live client.
			targets := make([]*clientConn, 0, len(sel)/4)
			for off := 0; off < len(sel); off += 4 {
				id := binary.LittleEndian.Uint32(sel[off : off+4])
				c := byID[id]
				if c == nil || !c.alive {
					e.Drops++
					if c != nil {
						c.drops++
					}
					targets = append(targets, nil)
					continue
				}
				if e.cfg.WriteTimeout > 0 {
					c.conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
				}
				if err := WriteFrame(c.conn, Frame{Type: MsgRoundStart, Client: id, Round: round, Payload: bcast}); err != nil {
					c.errs++
					c.drops++
					e.Drops++
					c.markDead()
					targets = append(targets, nil)
					continue
				}
				targets = append(targets, c)
			}
			// Collect uploads concurrently, pool sequentially in
			// selection order — the ShardBuffer IS the upstream wire
			// format, and its entry order is the fold order.
			type result struct {
				idx   int
				frame Frame
				err   error
			}
			results := make(chan result, len(targets))
			inflight := 0
			for i, c := range targets {
				if c == nil {
					continue
				}
				inflight++
				if e.cfg.StragglerTimeout > 0 {
					c.conn.SetReadDeadline(time.Now().Add(e.cfg.StragglerTimeout))
				}
				go func(i int, c *clientConn) {
					f, err := ReadFrame(c.conn)
					results <- result{idx: i, frame: f, err: err}
				}(i, c)
			}
			frames := make([]*Frame, len(targets))
			for ; inflight > 0; inflight-- {
				r := <-results
				c := targets[r.idx]
				switch {
				case r.err != nil:
					c.errs++
					c.drops++
					e.Drops++
					c.markDead()
				case r.frame.Type != MsgUpdate || r.frame.Round != round:
					c.errs++
					c.drops++
					e.Drops++
					c.markDead()
					r.frame.Release()
				default:
					c.conn.SetReadDeadline(time.Time{})
					f := r.frame
					frames[r.idx] = &f
				}
			}
			sb.Reset()
			for i, c := range targets {
				if c == nil || frames[i] == nil {
					continue
				}
				sb.Add(c.id, c.trainSize, frames[i].Payload)
				frames[i].Release()
			}
			rf.Release()
			if err := WriteFrame(root, Frame{Type: MsgShardUpdate, Client: e.cfg.Shard, Round: round, Payload: sb.Payload()}); err != nil {
				return fmt.Errorf("flnet: edge %d shard update: %w", e.cfg.Shard, err)
			}
		case MsgDone:
			for _, c := range e.clients {
				if !c.alive {
					continue
				}
				if e.cfg.WriteTimeout > 0 {
					c.conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
				}
				if err := WriteFrame(c.conn, Frame{Type: MsgDone, Client: c.id, Round: rf.Round, Payload: rf.Payload}); err != nil {
					c.errs++
					c.markDead()
				}
			}
			rf.Release()
			return nil
		default:
			rf.Release()
			return fmt.Errorf("flnet: edge %d: unexpected frame type %d from root", e.cfg.Shard, rf.Type)
		}
	}
}
