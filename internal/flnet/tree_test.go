package flnet

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/netsim"
	"spatl/internal/telemetry"
)

// treeFixture builds the shared federation inputs: spec, per-client
// datasets, and the algo config.
func treeFixture(t *testing.T, clients int, seed int64) (models.Spec, []fl.ClientData, algo.Config) {
	t.Helper()
	const classes = 4
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*60, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	cd := make([]fl.ClientData, clients)
	for i := range cd {
		cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
	}
	cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed}
	return spec, cd, cfg
}

// startTree spins up a root, its edges (one per ShardRange of the
// client-ID order) and the clients, and waits for the federation to
// finish. Returns the root server for post-run assertions.
func startTree(t *testing.T, spec models.Spec, cd []fl.ClientData, cfg algo.Config,
	global *models.SplitModel, shards, rounds int, seed int64, tel *telemetry.Set,
	edgeCfg func(shard int, base EdgeConfig) EdgeConfig, clientMayFail func(id int) bool,
	agg Aggregator, newTrainer func(c *algo.Client) Trainer) *TreeServer {
	t.Helper()
	if agg == nil {
		agg = algo.NewFedAvgAggregator(global, cfg)
	}
	if newTrainer == nil {
		newTrainer = func(c *algo.Client) Trainer { return algo.NewFedAvgTrainer(c, cfg) }
	}
	clients := len(cd)
	root, err := NewTreeServer(TreeServerConfig{
		Addr: "127.0.0.1:0", Shards: shards, Clients: clients, Rounds: rounds, Seed: seed,
		Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	globalInit := global.State(models.ScopeAll)
	rootErr := make(chan error, 1)
	go func() { rootErr <- root.Run(agg) }()

	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		lo, hi := algo.ShardRange(sh, clients, shards)
		ec := EdgeConfig{Addr: "127.0.0.1:0", Clients: hi - lo, RootAddr: root.Addr(), Shard: uint32(sh)}
		if edgeCfg != nil {
			ec = edgeCfg(sh, ec)
		}
		edge, err := NewEdge(ec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			// Churned edges exit with an error by design.
			if err := edge.Run(); err != nil && ec.Churn.P == 0 {
				t.Errorf("edge %d: %v", sh, err)
			}
		}(sh)
		for i := lo; i < hi; i++ {
			m := models.Build(spec, seed+int64(1000+i))
			m.SetState(models.ScopeAll, globalInit)
			tr := newTrainer(&algo.Client{ID: i, Train: cd[i].Train, Val: cd[i].Val, Model: m})
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				err := RunClient(addr, uint32(i), cd[i].Train.Len(), tr)
				if err != nil && (clientMayFail == nil || !clientMayFail(i)) {
					t.Errorf("client %d: %v", i, err)
				}
			}(i, edge.Addr())
		}
	}
	wg.Wait()
	if err := <-rootErr; err != nil {
		t.Fatalf("root: %v", err)
	}
	return root
}

// TestTreeCrossTransportEquivalence: a seeded sharded federation run
// in-process (fl.ShardedSim) and over a loopback TCP tree (TreeServer +
// Edges) must produce bitwise-identical global models, identical
// client-facing and relay byte counts, and byte-identical zero-time
// journals — the tree transport adds pooling, not semantics.
func TestTreeCrossTransportEquivalence(t *testing.T) {
	const (
		clients = 6
		shards  = 3
		rounds  = 2
		seed    = 41
	)
	spec, cd, _ := treeFixture(t, clients, seed)

	// In-process sharded simulation, full participation.
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, SampleRatio: 1, LocalEpochs: 1,
		BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed,
	}, cd)
	var simJournal bytes.Buffer
	simTel := telemetry.New(&simJournal)
	simTel.Journal.SetZeroTime(true)
	env.EnableTelemetry(simTel)
	cfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, clients)
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedAvgTrainer(c, cfg)
	}
	sim := fl.NewShardedSim(env, algo.NewFedAvgAggregator(env.Global, cfg), trainers, shards)
	all := make([]int, clients)
	for i := range all {
		all[i] = i
	}
	for r := 0; r < rounds; r++ {
		sim.Round(r, all)
	}

	// The identical federation over a TCP tree.
	var tcpJournal bytes.Buffer
	tcpTel := telemetry.New(&tcpJournal)
	tcpTel.Journal.SetZeroTime(true)
	global := models.Build(spec, seed)
	root := startTree(t, spec, cd, cfg, global, shards, rounds, seed, tcpTel, nil, nil, nil, nil)

	simState := env.Global.State(models.ScopeAll)
	tcpState := global.State(models.ScopeAll)
	if len(simState) != len(tcpState) {
		t.Fatalf("state length %d vs %d", len(simState), len(tcpState))
	}
	for j := range simState {
		if math.Float32bits(simState[j]) != math.Float32bits(tcpState[j]) {
			t.Fatalf("global state[%d] differs bitwise: %x (sim) vs %x (tree)",
				j, math.Float32bits(simState[j]), math.Float32bits(tcpState[j]))
		}
	}

	// Client-facing byte accounting matches the in-process meter, and
	// the tree's own hop is attributed to the relay counters.
	m := root.Meter()
	if env.Meter.Up() != m.Up() {
		t.Fatalf("client-facing uplink bytes differ: sim %d, tree %d", env.Meter.Up(), m.Up())
	}
	// The tree additionally broadcasts the final model (MsgDone) to every
	// client, which the in-process sim has no analogue for; per-round
	// downlink equality is already pinned by the journal comparison below.
	finalLen := int64(5 + 4*global.StateLen(models.ScopeAll))
	if m.Down() != env.Meter.Down()+int64(clients)*finalLen {
		t.Fatalf("client-facing downlink bytes differ: sim %d + final %d, tree %d",
			env.Meter.Down(), int64(clients)*finalLen, m.Down())
	}
	if env.Meter.RelayUp() != m.RelayUp() {
		t.Fatalf("relay uplink bytes differ: sim %d, tree %d", env.Meter.RelayUp(), m.RelayUp())
	}
	// The final model rides the relay hop once per edge.
	if m.RelayDown() != env.Meter.RelayDown()+int64(shards)*finalLen {
		t.Fatalf("relay downlink bytes differ: sim %d + final %d, tree %d",
			env.Meter.RelayDown(), int64(shards)*finalLen, m.RelayDown())
	}
	// Pooling trades frame count for a 12-byte entry header per upload:
	// relay uplink is the client uplink plus exactly those headers.
	if m.RelayUp() != m.Up()+int64(12*clients*rounds) {
		t.Fatalf("relay uplink %d != client uplink %d + entry headers", m.RelayUp(), m.Up())
	}

	if err := simTel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tcpTel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(simJournal.Bytes(), []byte(`"ev":"shard_push"`)) {
		t.Fatalf("sharded journal lacks shard_push events:\n%s", simJournal.Bytes())
	}
	if !bytes.Equal(simJournal.Bytes(), tcpJournal.Bytes()) {
		t.Fatalf("journals diverge across transports:\nsim:\n%s\ntree:\n%s",
			simJournal.Bytes(), tcpJournal.Bytes())
	}
}

// TestTreeEdgeChurn: an edge aggregator that crashes mid-federation
// degrades to per-shard drops — the root records shard_drop events and
// per-shard counters and keeps federating on the surviving shards
// instead of stalling.
func TestTreeEdgeChurn(t *testing.T) {
	const (
		clients = 4
		shards  = 2
		rounds  = 3
		seed    = 58
	)
	spec, cd, cfg := treeFixture(t, clients, seed)

	// Deterministic churn that spares round 0 and kills shard 1 at
	// round 1 — found by scanning seeds, then fixed forever.
	var churn netsim.Churn
	for s := int64(0); ; s++ {
		c := netsim.Churn{P: 0.5, Seed: s}
		if !c.Fails(0, 1) && c.Fails(1, 1) {
			churn = c
			break
		}
	}

	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	global := models.Build(spec, seed)
	lo, _ := algo.ShardRange(1, clients, shards)
	root := startTree(t, spec, cd, cfg, global, shards, rounds, seed, tel,
		func(shard int, base EdgeConfig) EdgeConfig {
			if shard == 1 {
				base.Churn = churn
				base.StragglerTimeout = 5 * time.Second
			}
			return base
		},
		func(id int) bool { return id >= lo }, // shard 1 clients die with their edge
		nil, nil,
	)

	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(journal.Bytes(), []byte(`"ev":"shard_drop"`)) {
		t.Fatalf("journal records no shard_drop events:\n%s", journal.Bytes())
	}
	// Shard 1 holds 2 clients and vanished for rounds 1 and 2.
	if got := root.ShardDrops(1); got != 4 {
		t.Fatalf("shard 1 drops = %d, want 4", got)
	}
	if got := root.ShardDrops(0); got != 0 {
		t.Fatalf("shard 0 drops = %d, want 0", got)
	}
	snap := tel.Reg.Snapshot()
	if snap.Counters["flnet.shard.1.drops"] != root.ShardDrops(1) {
		t.Fatalf("registry sees %d shard-1 drops, accessor %d",
			snap.Counters["flnet.shard.1.drops"], root.ShardDrops(1))
	}
	if root.Drops() != root.ShardDrops(0)+root.ShardDrops(1) {
		t.Fatalf("total drops %d != shard sum %d", root.Drops(), root.ShardDrops(0)+root.ShardDrops(1))
	}
}

// delayedTrainer wraps a trainer, sleeping a configured duration per
// round before training — a deterministic straggler.
type delayedTrainer struct {
	Trainer
	delays map[int]time.Duration
}

func (d *delayedTrainer) LocalUpdate(round int, payload []byte) []byte {
	if dl := d.delays[round]; dl > 0 {
		time.Sleep(dl)
	}
	return d.Trainer.LocalUpdate(round, payload)
}

// TestAsyncQuorumRounds: with ServerConfig.Quorum set, a round closes
// as soon as K sampled uploads arrive (quorum_reached), and a
// straggler's upload folds into the round in progress when it lands
// (late_upload + "flnet.late_uploads"), instead of stalling the
// federation or being discarded.
func TestAsyncQuorumRounds(t *testing.T) {
	const (
		clients = 3
		rounds  = 2
		seed    = 77
	)
	spec, cd, cfg := treeFixture(t, clients, seed)

	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: seed,
		Quorum: 2, StragglerTimeout: 30 * time.Second,
		Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := models.Build(spec, seed)
	globalInit := global.State(models.ScopeAll)
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(algo.NewFedAvgAggregator(global, cfg)) }()

	// Client 2 straggles in round 0; clients 0 and 1 straggle in round
	// 1, so client 2's late round-0 upload demonstrably lands inside
	// round 1's collect window.
	delays := map[int]map[int]time.Duration{
		0: {1: 900 * time.Millisecond},
		1: {1: 900 * time.Millisecond},
		2: {0: 300 * time.Millisecond},
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		m := models.Build(spec, seed+int64(1000+i))
		m.SetState(models.ScopeAll, globalInit)
		tr := &delayedTrainer{
			Trainer: algo.NewFedAvgTrainer(&algo.Client{ID: i, Train: cd[i].Train, Val: cd[i].Val, Model: m}, cfg),
			delays:  delays[i],
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := RunClient(srv.Addr(), uint32(i), cd[i].Train.Len(), tr); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}

	if srv.LateUploads() < 1 {
		t.Fatalf("late uploads = %d, want >= 1", srv.LateUploads())
	}
	snap := tel.Reg.Snapshot()
	if snap.Counters["flnet.late_uploads"] != srv.LateUploads() {
		t.Fatalf("registry sees %d late uploads, accessor %d",
			snap.Counters["flnet.late_uploads"], srv.LateUploads())
	}
	j := journal.Bytes()
	if !bytes.Contains(j, []byte(`"ev":"quorum_reached"`)) {
		t.Fatalf("journal records no quorum_reached events:\n%s", j)
	}
	if !bytes.Contains(j, []byte(`"ev":"late_upload"`)) {
		t.Fatalf("journal records no late_upload events:\n%s", j)
	}
	if srv.Drops() != 0 {
		t.Fatalf("async stragglers must not count as drops, got %d", srv.Drops())
	}
}

// TestTreeSSFLShardedEquivalence: the SSFL protocol — mask agreement,
// one index-bearing sparse round, then values-only rounds — must be
// transport-invariant on the sharded tree too: in-process
// fl.ShardedSim and TreeServer+Edges produce bitwise-identical global
// models and byte-identical zero-time journals, including the
// mask_agreement event at the same position.
func TestTreeSSFLShardedEquivalence(t *testing.T) {
	const (
		clients = 6
		shards  = 3
		rounds  = 3 // agreement + index-bearing + values-only
		seed    = 47
		classes = 4
	)
	spec := models.Spec{Arch: "resnet20", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.25}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*40, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	cd := make([]fl.ClientData, clients)
	for i := range cd {
		cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
	}

	// In-process sharded simulation, full participation.
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, SampleRatio: 1, LocalEpochs: 1,
		BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed,
	}, cd)
	var simJournal bytes.Buffer
	simTel := telemetry.New(&simJournal)
	simTel.Journal.SetZeroTime(true)
	env.EnableTelemetry(simTel)
	cfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, clients)
	for i, c := range env.Clients {
		trainers[i] = algo.NewSSFLTrainer(c, algo.SSFLOptions{}, cfg)
	}
	sim := fl.NewShardedSim(env, algo.NewSSFLAggregator(env.Global, algo.SSFLOptions{}, cfg), trainers, shards)
	all := make([]int, clients)
	for i := range all {
		all[i] = i
	}
	for r := 0; r < rounds; r++ {
		sim.Round(r, all)
	}

	// The identical federation over a TCP tree.
	var tcpJournal bytes.Buffer
	tcpTel := telemetry.New(&tcpJournal)
	tcpTel.Journal.SetZeroTime(true)
	global := models.Build(spec, seed)
	root := startTree(t, spec, cd, cfg, global, shards, rounds, seed, tcpTel, nil, nil,
		algo.NewSSFLAggregator(global, algo.SSFLOptions{}, cfg),
		func(c *algo.Client) Trainer { return algo.NewSSFLTrainer(c, algo.SSFLOptions{}, cfg) },
	)

	simState := env.Global.State(models.ScopeAll)
	tcpState := global.State(models.ScopeAll)
	if len(simState) != len(tcpState) {
		t.Fatalf("state length %d vs %d", len(simState), len(tcpState))
	}
	for j := range simState {
		if math.Float32bits(simState[j]) != math.Float32bits(tcpState[j]) {
			t.Fatalf("global state[%d] differs bitwise: %x (sim) vs %x (tree)",
				j, math.Float32bits(simState[j]), math.Float32bits(tcpState[j]))
		}
	}

	// Client-facing uplink matches, and pooling's only overhead is the
	// 12-byte entry header per upload — sparse frames ride it unchanged.
	m := root.Meter()
	if env.Meter.Up() != m.Up() {
		t.Fatalf("client-facing uplink bytes differ: sim %d, tree %d", env.Meter.Up(), m.Up())
	}
	if m.RelayUp() != m.Up()+int64(12*clients*rounds) {
		t.Fatalf("relay uplink %d != client uplink %d + entry headers", m.RelayUp(), m.Up())
	}

	if err := simTel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tcpTel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(simJournal.Bytes(), []byte(`"ev":"mask_agreement"`)) {
		t.Fatalf("sharded journal lacks the mask_agreement event:\n%s", simJournal.Bytes())
	}
	if !bytes.Equal(simJournal.Bytes(), tcpJournal.Bytes()) {
		t.Fatalf("journals diverge across transports:\nsim:\n%s\ntree:\n%s",
			simJournal.Bytes(), tcpJournal.Bytes())
	}
}

// TestAsyncQuorumSSFL: SSFL under async quorum rounds. Round 0 closes
// on a quorum of score uploads; a straggler's late round-0 score frame
// lands inside a mask-static round, where it cannot decode as packed
// values — the aggregator must count it as a drop and keep federating,
// never panic or densify.
func TestAsyncQuorumSSFL(t *testing.T) {
	const (
		clients = 3
		rounds  = 3
		seed    = 83
		classes = 4
	)
	spec := models.Spec{Arch: "resnet20", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.25}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*40, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	cd := make([]fl.ClientData, clients)
	for i := range cd {
		cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
	}
	cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed}

	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: seed,
		Quorum: 2, StragglerTimeout: 30 * time.Second,
		Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	global := models.Build(spec, seed)
	globalInit := global.State(models.ScopeAll)
	agg := algo.NewSSFLAggregator(global, algo.SSFLOptions{}, cfg)
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()

	// Client 2's round-0 score upload straggles past the quorum; clients
	// 0 and 1 straggle in round 1 so the late score frame demonstrably
	// lands inside the mask-static collect window.
	delays := map[int]map[int]time.Duration{
		0: {1: 900 * time.Millisecond},
		1: {1: 900 * time.Millisecond},
		2: {0: 300 * time.Millisecond},
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		m := models.Build(spec, seed+int64(1000+i))
		m.SetState(models.ScopeAll, globalInit)
		tr := &delayedTrainer{
			Trainer: algo.NewSSFLTrainer(&algo.Client{ID: i, Train: cd[i].Train, Val: cd[i].Val, Model: m}, algo.SSFLOptions{}, cfg),
			delays:  delays[i],
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := RunClient(srv.Addr(), uint32(i), cd[i].Train.Len(), tr); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}

	if srv.LateUploads() < 1 {
		t.Fatalf("late uploads = %d, want >= 1", srv.LateUploads())
	}
	// The late round-0 score frame cannot fold into a mask-static round.
	if agg.Dropped() < 1 {
		t.Fatalf("aggregator drops = %d, want >= 1 (late score frame at packed phase)", agg.Dropped())
	}
	j := journal.Bytes()
	if !bytes.Contains(j, []byte(`"ev":"quorum_reached"`)) {
		t.Fatalf("journal records no quorum_reached events:\n%s", j)
	}
	if !bytes.Contains(j, []byte(`"ev":"mask_agreement"`)) {
		t.Fatalf("journal records no mask_agreement event:\n%s", j)
	}
	// The global must still be finite and masked: SSFL quorum rounds
	// average whichever packed uploads arrive.
	for i, v := range global.State(models.ScopeAll) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("global state[%d] is not finite after quorum rounds: %v", i, v)
		}
	}
}
