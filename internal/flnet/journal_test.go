package flnet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/telemetry"
)

// runClientRounds is a client that registers, participates in exactly
// nRounds rounds, then closes its connection — simulating a node that
// crashes mid-federation.
func runClientRounds(t *testing.T, addr string, id uint32, trainSize int, tr Trainer, nRounds int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer conn.Close()
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(trainSize))
	if err := WriteFrame(conn, Frame{Type: MsgHello, Client: id, Payload: hello[:]}); err != nil {
		t.Error(err)
		return
	}
	for r := 0; r < nRounds; r++ {
		f, err := ReadFrame(conn)
		if err != nil {
			t.Error(err)
			return
		}
		if f.Type != MsgRoundStart {
			f.Release()
			return
		}
		up := tr.LocalUpdate(int(f.Round), f.Payload)
		round := f.Round
		f.Release()
		if err := WriteFrame(conn, Frame{Type: MsgUpdate, Client: id, Round: round, Payload: up}); err != nil {
			t.Error(err)
			return
		}
	}
}

// runJournaledFederation executes one seeded FedAvg federation over
// loopback TCP with a zero-time journal attached to the server and
// returns the journal bytes.
func runJournaledFederation(t *testing.T, seed int64, clients, rounds int) []byte {
	t.Helper()
	const classes = 4
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*60, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	cd := make([]fl.ClientData, clients)
	for i := range cd {
		cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
	}

	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: seed,
		Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed}
	global := models.Build(spec, seed)
	globalInit := global.State(models.ScopeAll)
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(algo.NewFedAvgAggregator(global, cfg)) }()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		m := models.Build(spec, seed+int64(1000+i))
		m.SetState(models.ScopeAll, globalInit)
		tr := algo.NewFedAvgTrainer(&algo.Client{ID: i, Train: cd[i].Train, Val: cd[i].Val, Model: m}, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := RunClient(srv.Addr(), uint32(i), cd[i].Train.Len(), tr); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	return journal.Bytes()
}

// TestJournalDeterministicAcrossRuns: two identical seeded 3-round TCP
// federations must emit byte-identical zero-time journals — TCP
// scheduling, goroutine interleaving and connection order must not leak
// into the event sequence.
func TestJournalDeterministicAcrossRuns(t *testing.T) {
	a := runJournaledFederation(t, 97, 3, 3)
	b := runJournaledFederation(t, 97, 3, 3)
	if len(a) == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded journals differ across runs:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
	// 3 rounds × (round_start + 3 uploads + aggregate + round_end).
	wantLines := 3 * (1 + 3 + 1 + 1)
	if got := bytes.Count(a, []byte("\n")); got != wantLines {
		t.Fatalf("journal has %d lines, want %d:\n%s", got, wantLines, a)
	}
}

// TestServerDropCounters: a client that dies mid-federation shows up in
// Drops()/Errors(), in the registry counters they alias, and as
// drop events in the journal.
func TestServerDropCounters(t *testing.T) {
	const clients, rounds, classes = 2, 3, 4
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*60, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))

	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 7,
		Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 7}
	global := models.Build(spec, 7)
	globalInit := global.State(models.ScopeAll)
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(algo.NewFedAvgAggregator(global, cfg)) }()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		m := models.Build(spec, 7+int64(1000+i))
		m.SetState(models.ScopeAll, globalInit)
		tr, va := ds.Subset(parts[i]).Split(0.8)
		trainer := algo.NewFedAvgTrainer(&algo.Client{ID: i, Train: tr, Val: va, Model: m}, cfg)
		wg.Add(1)
		if i == 1 {
			// Client 1 participates in round 0 only, then vanishes.
			go func() {
				defer wg.Done()
				runClientRounds(t, srv.Addr(), 1, tr.Len(), trainer, 1)
			}()
			continue
		}
		go func(i int) {
			defer wg.Done()
			if err := RunClient(srv.Addr(), uint32(i), tr.Len(), trainer); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if srv.Drops() == 0 {
		t.Fatal("expected drops after a client vanished")
	}
	snap := tel.Reg.Snapshot()
	if snap.Counters["flnet.drops"] != srv.Drops() {
		t.Fatalf("registry sees %d drops, accessor %d", snap.Counters["flnet.drops"], srv.Drops())
	}
	if snap.Counters["flnet.errors"] != srv.Errors() {
		t.Fatalf("registry sees %d errors, accessor %d", snap.Counters["flnet.errors"], srv.Errors())
	}
	if !bytes.Contains(journal.Bytes(), []byte(`"ev":"drop"`)) {
		t.Fatalf("journal records no drop events:\n%s", journal.Bytes())
	}
}
