package flnet

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: MsgUpdate, Client: 7, Round: 42, Payload: []byte{1, 2, 3, 4, 5}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Client != in.Client || out.Round != in.Round {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgHello, Client: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != 0 {
		t.Fatalf("payload length %d", len(f.Payload))
	}
}

func TestReadFrameRejectsCorruptLength(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("expected error for implausible length")
	}
	buf = bytes.NewBuffer([]byte{1, 0, 0, 0, 0})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("expected error for undersized frame")
	}
}

func TestSamplePerm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := samplePerm(rng, 10, 4)
	if len(s) != 4 {
		t.Fatalf("len %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("not sorted/unique")
		}
	}
	s = samplePerm(rng, 3, 5)
	if len(s) != 3 {
		t.Fatal("k>n must return all")
	}
}

// TestFederationOverTCP runs a complete FedAvg federation over loopback
// TCP: one server, four client goroutines, three rounds — asserting the
// final model learns above chance and every client converges on the
// same final weights.
func TestFederationOverTCP(t *testing.T) {
	const (
		clients = 4
		rounds  = 3
		classes = 4
	)
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*80, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))

	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	global := models.Build(spec, 5)
	agg := &FedAvgAggregator{Global: global}

	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()

	var wg sync.WaitGroup
	trainers := make([]*FedAvgTrainer, clients)
	clientErrs := make([]error, clients)
	var val *data.Dataset
	for i := 0; i < clients; i++ {
		tr, va := ds.Subset(parts[i]).Split(0.8)
		if val == nil {
			val = va
		}
		trainers[i] = NewFedAvgTrainer(spec, tr, va, i, fl.LocalOpts{
			Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9,
		}, int64(10+i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(srv.Addr(), uint32(i), trainers[i].Client.Train.Len(), trainers[i])
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every client must hold the identical final model.
	for i := 1; i < clients; i++ {
		a, b := trainers[0].FinalModel, trainers[i].FinalModel
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("client %d final model missing or mis-sized", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("clients 0 and %d disagree on the final model", i)
			}
		}
	}
	// The federation must have learned something.
	var total float64
	for _, tr := range trainers {
		total += fl.EvalAccuracy(tr.Client.Model, tr.Client.Val, 32)
	}
	avg := total / clients
	if avg < 0.40 {
		t.Fatalf("federated accuracy %.3f after %d rounds over TCP; want > 0.40 (chance 0.25)", avg, rounds)
	}
	// Byte accounting moved in both directions.
	if srv.UpBytes == 0 || srv.DownBytes == 0 {
		t.Fatal("server recorded no traffic")
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 0, Rounds: 1}); err == nil {
		t.Fatal("expected error for zero clients")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 1, Rounds: 0}); err == nil {
		t.Fatal("expected error for zero rounds")
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- srv.Run(&FedAvgAggregator{Global: models.Build(models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 2, W: 2}, 1)})
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Send a non-hello frame.
	if err := WriteFrame(conn, Frame{Type: MsgUpdate, Client: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("server should reject a bad hello")
	}
	conn.Close()
}
