package flnet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: MsgUpdate, Client: 7, Round: 42, Payload: []byte{1, 2, 3, 4, 5}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Client != in.Client || out.Round != in.Round {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload mismatch")
	}
	out.Release()
	if out.Payload != nil {
		t.Fatal("Release must clear the payload view")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgHello, Client: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != 0 {
		t.Fatalf("payload length %d", len(f.Payload))
	}
	f.Release()
}

// TestReadFrameMalformed sweeps hostile inputs through the frame parser:
// every case must error cleanly — no panic, no giant allocation.
func TestReadFrameMalformed(t *testing.T) {
	lenPrefix := func(n uint32, body ...byte) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], n)
		return append(b[:], body...)
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty input", nil},
		{"truncated length prefix", []byte{1, 2}},
		{"zero length", lenPrefix(0)},
		{"undersized frame (header needs 9)", lenPrefix(8, 0, 0, 0, 0, 0, 0, 0, 0)},
		{"implausible length (4GiB)", []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0}},
		{"length just over maxFrame", lenPrefix(maxFrame + 1)},
		{"truncated body", lenPrefix(20, 1, 2, 3)},
		{"header only, body missing", lenPrefix(9)},
	}
	for _, tc := range cases {
		if _, err := ReadFrame(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// A minimal header-only frame is valid: empty payload.
	f, err := ReadFrame(bytes.NewReader(lenPrefix(9, MsgHello, 1, 0, 0, 0, 2, 0, 0, 0)))
	if err != nil {
		t.Fatalf("minimal frame: %v", err)
	}
	if f.Type != MsgHello || f.Client != 1 || f.Round != 2 || len(f.Payload) != 0 {
		t.Fatalf("minimal frame decoded wrong: %+v", f)
	}
	f.Release()
}

func TestSamplePerm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := samplePerm(rng, 10, 4)
	if len(s) != 4 {
		t.Fatalf("len %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("not sorted/unique")
		}
	}
	s = samplePerm(rng, 3, 5)
	if len(s) != 3 {
		t.Fatal("k>n must return all")
	}
}

// TestFederationOverTCP runs a complete FedAvg federation over loopback
// TCP: one server, four client goroutines, three rounds — asserting the
// final model learns above chance and every client converges on the
// same final weights. The algorithm cores come from internal/algo, the
// same ones the in-process simulator drives.
func TestFederationOverTCP(t *testing.T) {
	const (
		clients = 4
		rounds  = 3
		classes = 4
	)
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*80, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))

	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algo.Config{
		NumClients: clients, LocalEpochs: 2, BatchSize: 16,
		LR: 0.05, Momentum: 0.9, Seed: 5,
	}
	agg := algo.NewFedAvgAggregator(models.Build(spec, 5), cfg)

	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()

	var wg sync.WaitGroup
	trainers := make([]*algo.FedAvgTrainer, clients)
	clientErrs := make([]error, clients)
	for i := 0; i < clients; i++ {
		tr, va := ds.Subset(parts[i]).Split(0.8)
		trainers[i] = algo.NewFedAvgTrainer(&algo.Client{
			ID: i, Train: tr, Val: va, Model: models.Build(spec, 5),
		}, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(srv.Addr(), uint32(i), trainers[i].Client.Train.Len(), trainers[i])
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Every client must hold the identical final model.
	for i := 1; i < clients; i++ {
		a, b := trainers[0].FinalModel, trainers[i].FinalModel
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("client %d final model missing or mis-sized", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("clients 0 and %d disagree on the final model", i)
			}
		}
	}
	// The federation must have learned something.
	var total float64
	for _, tr := range trainers {
		total += fl.EvalAccuracy(tr.Client.Model, tr.Client.Val, 32)
	}
	avg := total / clients
	if avg < 0.40 {
		t.Fatalf("federated accuracy %.3f after %d rounds over TCP; want > 0.40 (chance 0.25)", avg, rounds)
	}
	// Byte accounting moved in both directions, and frame headers are
	// included in the full-frame counters.
	if srv.UpBytes == 0 || srv.DownBytes == 0 {
		t.Fatal("server recorded no traffic")
	}
	if srv.UpBytes <= srv.UpPayloadBytes || srv.DownBytes <= srv.DownPayloadBytes {
		t.Fatal("full-frame counters must exceed payload-only counters")
	}
	// Nobody dropped in a healthy federation.
	for _, st := range srv.ClientStats() {
		if !st.Alive || st.Drops != 0 || st.Errors != 0 {
			t.Fatalf("healthy federation reported failures: %+v", st)
		}
	}
}

// TestStragglerTimeout stalls one of three clients mid-federation: the
// server must finish anyway, aggregating each round from the clients
// that reported, and the stall must show up in the per-client counters.
func TestStragglerTimeout(t *testing.T) {
	const (
		clients = 3
		rounds  = 2
		classes = 2
	)
	spec := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 4, W: 4}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 4, W: 4, Noise: 0.2}, clients*30, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 1.0, 5, rand.New(rand.NewSource(7)))

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 4,
		StragglerTimeout: 3 * time.Second, WriteTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, Seed: 9}
	agg := algo.NewFedAvgAggregator(models.Build(spec, 5), cfg)

	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()

	var wg sync.WaitGroup
	trainers := make([]*algo.FedAvgTrainer, clients-1)
	clientErrs := make([]error, clients-1)
	for i := 0; i < clients-1; i++ {
		tr, va := ds.Subset(parts[i]).Split(0.8)
		trainers[i] = algo.NewFedAvgTrainer(&algo.Client{
			ID: i, Train: tr, Val: va, Model: models.Build(spec, 5),
		}, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = RunClient(srv.Addr(), uint32(i), trainers[i].Client.Train.Len(), trainers[i])
		}(i)
	}
	// The straggler registers, then never answers a round start.
	stalled, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], 10)
	if err := WriteFrame(stalled, Frame{Type: MsgHello, Client: clients - 1, Payload: hello[:]}); err != nil {
		t.Fatal(err)
	}

	if err := <-serverErr; err != nil {
		t.Fatalf("server must survive a straggler, got: %v", err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("healthy client %d: %v", i, err)
		}
	}
	if len(trainers[0].FinalModel) == 0 {
		t.Fatal("healthy clients must still receive the final model")
	}

	var straggler *ClientStats
	for _, st := range srv.ClientStats() {
		st := st
		if st.ID == clients-1 {
			straggler = &st
			continue
		}
		if !st.Alive || st.Drops != 0 {
			t.Fatalf("healthy client penalized: %+v", st)
		}
	}
	if straggler == nil {
		t.Fatal("straggler missing from stats")
	}
	if straggler.Alive {
		t.Fatal("straggler must be marked dead")
	}
	if straggler.Drops != rounds {
		t.Fatalf("straggler drops = %d, want %d (timed out round 0, dead round 1)", straggler.Drops, rounds)
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 0, Rounds: 1}); err == nil {
		t.Fatal("expected error for zero clients")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 1, Rounds: 0}); err == nil {
		t.Fatal("expected error for zero rounds")
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		global := models.Build(models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 2, W: 2}, 1)
		done <- srv.Run(algo.NewFedAvgAggregator(global, algo.Config{NumClients: 1}))
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Send a non-hello frame.
	if err := WriteFrame(conn, Frame{Type: MsgUpdate, Client: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("server should reject a bad hello")
	}
	conn.Close()
}
