package flnet

import "math/rand"

// newRng builds the server's sampling source.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// samplePerm draws k distinct indices from [0,n), sorted ascending.
func samplePerm(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)[:k]
	// insertion sort — k is small
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}
