package flnet

import (
	"fmt"
	"time"

	"spatl/internal/algo"
	"spatl/internal/telemetry"
)

// Buffered/async rounds (FedBuff-style). The synchronous loop's cost at
// scale is the tail: every round waits for the slowest sampled client.
// With ServerConfig.Quorum set, the server aggregates as soon as K of
// the round's sampled uploads have arrived and moves on; a straggler's
// work is not discarded — its upload folds into whatever round is in
// progress when it lands (a "late upload", counted in
// "flnet.late_uploads" and journaled as late_upload). Arrival order is
// scheduling-dependent, so async rounds trade the sync loop's bitwise
// journal reproducibility for tail-latency immunity; the journal still
// proves the semantics (quorum_reached, late_upload events).

// arrival is one frame (or terminal read error) from a persistent
// per-client reader goroutine.
type arrival struct {
	ci    int // index into s.clients
	frame Frame
	err   error
}

// runAsync is the buffered round loop: persistent readers feed a single
// arrivals channel; each round closes at quorum or at the straggler
// deadline, and stale uploads fold into the round in progress.
func (s *Server) runAsync(agg Aggregator) error {
	tel := s.cfg.Tel
	rng := newRng(s.cfg.Seed)
	streamAgg, _ := agg.(algo.StreamingAggregator)
	// Readers outlive rounds: a straggler's upload must be readable
	// after its round closed. Capacity absorbs a burst of one pending
	// upload plus the terminal error per client; a full channel simply
	// backpressures that client's reader.
	arrivals := make(chan arrival, 4*len(s.clients)+8)
	for ci, c := range s.clients {
		go func(ci int, c *clientConn) {
			for {
				f, err := ReadFrame(c.conn)
				arrivals <- arrival{ci: ci, frame: f, err: err}
				if err != nil {
					return
				}
			}
		}(ci, c)
	}

	for round := 0; round < s.cfg.Rounds; round++ {
		payload := agg.Broadcast(round)
		selected := samplePerm(rng, len(s.clients), s.cfg.PerRound)
		if streamAgg != nil {
			ids := make([]uint32, len(selected))
			for i, ci := range selected {
				ids[i] = s.clients[ci].id
			}
			streamAgg.BeginRound(round, ids)
		}
		tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))
		roundStart := time.Now()

		awaited := make(map[int]bool, len(selected)) // client idx -> still owes this round's upload
		for _, ci := range selected {
			c := s.clients[ci]
			if !c.alive {
				c.drops++
				s.drops.Inc()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
				tel.Emit(telemetry.Drop(round, int(c.id)))
				continue
			}
			if s.cfg.WriteTimeout > 0 {
				c.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			f := Frame{Type: MsgRoundStart, Client: c.id, Round: uint32(round), Payload: payload}
			if err := WriteFrame(c.conn, f); err != nil {
				c.errs++
				c.drops++
				s.errs.Inc()
				s.drops.Inc()
				c.markDead()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
				tel.Emit(telemetry.Drop(round, int(c.id)))
				continue
			}
			s.DownBytes += int64(frameHeaderLen + len(payload))
			s.DownPayloadBytes += int64(len(payload))
			awaited[ci] = true
		}

		want := s.cfg.Quorum
		if want > len(awaited) {
			want = len(awaited)
		}
		var timer *time.Timer
		var deadline <-chan time.Time
		if s.cfg.StragglerTimeout > 0 {
			timer = time.NewTimer(s.cfg.StragglerTimeout)
			deadline = timer.C
		}
		onTime, folded := 0, 0
	recv:
		for onTime < want {
			var a arrival
			select {
			case a = <-arrivals:
			case <-deadline:
				break recv
			}
			c := s.clients[a.ci]
			switch {
			case a.err != nil:
				if !c.alive {
					continue // terminal error of a connection we closed
				}
				c.errs++
				s.errs.Inc()
				c.markDead()
				if awaited[a.ci] {
					delete(awaited, a.ci)
					c.drops++
					s.drops.Inc()
					if streamAgg != nil {
						streamAgg.MarkAbsent(round, c.id)
					}
					tel.Emit(telemetry.Drop(round, int(c.id)))
					if want > len(awaited)+onTime {
						want = len(awaited) + onTime
					}
				}
			case a.frame.Type != MsgUpdate || int(a.frame.Round) > round:
				c.errs++
				s.errs.Inc()
				c.markDead()
				a.frame.Release()
				if awaited[a.ci] {
					delete(awaited, a.ci)
					c.drops++
					s.drops.Inc()
					if streamAgg != nil {
						streamAgg.MarkAbsent(round, c.id)
					}
					tel.Emit(telemetry.Drop(round, int(c.id)))
					if want > len(awaited)+onTime {
						want = len(awaited) + onTime
					}
				}
			case int(a.frame.Round) == round && awaited[a.ci]:
				delete(awaited, a.ci)
				s.UpBytes += int64(frameHeaderLen + len(a.frame.Payload))
				s.UpPayloadBytes += int64(len(a.frame.Payload))
				tel.Emit(telemetry.ClientUpload(round, int(c.id), int64(len(a.frame.Payload)), time.Since(roundStart).Nanoseconds()))
				agg.Collect(round, c.id, c.trainSize, a.frame.Payload)
				a.frame.Release()
				onTime++
				folded++
			case int(a.frame.Round) < round:
				// A straggler's upload from an earlier round: fold it
				// into the round in progress instead of discarding the
				// client's work. CollectLate bypasses the streaming
				// cursor — the straggler may ALSO be selected this round
				// and still owe a fresh upload for its own slot.
				s.late.Inc()
				s.UpBytes += int64(frameHeaderLen + len(a.frame.Payload))
				s.UpPayloadBytes += int64(len(a.frame.Payload))
				tel.Emit(telemetry.LateUpload(round, int(c.id), int64(len(a.frame.Payload))))
				if streamAgg != nil {
					streamAgg.CollectLate(round, c.id, c.trainSize, a.frame.Payload)
				} else {
					agg.Collect(round, c.id, c.trainSize, a.frame.Payload)
				}
				a.frame.Release()
				folded++
			default:
				// Same-round duplicate or an upload from a client that
				// was never sent this round's broadcast: protocol
				// violation, never fold it twice.
				c.errs++
				s.errs.Inc()
				c.markDead()
				a.frame.Release()
			}
		}
		if timer != nil {
			timer.Stop()
		}
		if want > 0 && onTime >= want {
			tel.Emit(telemetry.Quorum(round, onTime))
		}
		t0 := time.Now()
		agg.FinishRound(round)
		tel.Emit(telemetry.Aggregate(round, folded, time.Since(t0).Nanoseconds()))
		tel.Emit(telemetry.RoundEnd(round, s.UpPayloadBytes, s.DownPayloadBytes))

		anyAlive := false
		for _, c := range s.clients {
			if c.alive {
				anyAlive = true
				break
			}
		}
		if !anyAlive {
			return fmt.Errorf("flnet: all %d clients dead after round %d", len(s.clients), round)
		}
	}
	return nil
}
