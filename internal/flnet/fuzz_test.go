package flnet

import (
	"bytes"
	"testing"

	"spatl/internal/algo"
)

// FuzzReadFrame ensures the frame parser never panics or over-allocates
// on hostile input, and that valid frames round-trip.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, Frame{Type: MsgUpdate, Client: 3, Round: 9, Payload: []byte("abc")})
	f.Add(seed.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	f.Add([]byte{})
	// A pooled shard frame — the tree root's hot input.
	var sb algo.ShardBuffer
	sb.Add(7, 120, []byte("payload-a"))
	sb.Add(9, 80, []byte("payload-b"))
	var shard bytes.Buffer
	WriteFrame(&shard, Frame{Type: MsgShardUpdate, Client: 1, Round: 2, Payload: sb.Payload()})
	f.Add(shard.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Client != fr.Client || fr2.Round != fr.Round ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}
