package flnet

import (
	"bytes"
	"testing"
)

// FuzzReadFrame ensures the frame parser never panics or over-allocates
// on hostile input, and that valid frames round-trip.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, Frame{Type: MsgUpdate, Client: 3, Round: 9, Payload: []byte("abc")})
	f.Add(seed.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		fr2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Client != fr.Client || fr2.Round != fr.Round ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}
