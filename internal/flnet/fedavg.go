package flnet

import (
	"math/rand"
	"sync/atomic"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/tensor"
)

// FedAvgAggregator implements Aggregator with data-size-weighted model
// averaging over dense checkpoint payloads — FedAvg deployed on the
// wire.
type FedAvgAggregator struct {
	Global *models.SplitModel

	sum     []float64 // reused across rounds; len 0 when idle
	weight  float64
	bcast   []byte // reusable broadcast frame body
	dropped atomic.Int64
}

// Dropped reports how many corrupt uploads have been discarded since
// construction; surfaced so operators can tell a skewed aggregate from
// a healthy one.
func (a *FedAvgAggregator) Dropped() int64 { return a.dropped.Load() }

// Broadcast implements Aggregator. The returned frame body is owned by
// the aggregator and reused next round.
func (a *FedAvgAggregator) Broadcast(round int) []byte {
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	a.bcast = comm.EncodeDenseInto(a.bcast, state)
	comm.PutF32(state)
	return a.bcast
}

// Collect implements Aggregator.
func (a *FedAvgAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	state, err := comm.DecodeDenseInto(comm.GetF32(a.Global.StateLen(models.ScopeAll)), payload)
	if err != nil {
		// A corrupt upload is dropped; the round proceeds with the rest,
		// and the count records that the aggregate is missing a client.
		a.dropped.Add(1)
		return
	}
	if len(a.sum) != len(state) {
		a.sum = make([]float64, len(state))
	}
	w := float64(trainSize)
	for i, v := range state {
		a.sum[i] += w * float64(v)
	}
	a.weight += w
	comm.PutF32(state)
}

// FinishRound implements Aggregator. The divide is elementwise, so the
// parallel chunking is trivially bitwise identical to the serial loop.
func (a *FedAvgAggregator) FinishRound(round int) {
	if a.weight == 0 {
		return
	}
	state := comm.GetF32(len(a.sum))
	w := a.weight
	tensor.Parallel(len(a.sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			state[i] = float32(a.sum[i] / w)
			a.sum[i] = 0
		}
	})
	a.Global.SetState(models.ScopeAll, state)
	comm.PutF32(state)
	a.weight = 0
}

// Final implements Aggregator.
func (a *FedAvgAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedAvgTrainer implements Trainer: install the broadcast model, run
// local SGD on the private shard, upload the result.
type FedAvgTrainer struct {
	Client *fl.Client
	Opts   fl.LocalOpts
	Seed   int64

	// FinalModel is populated by Finish.
	FinalModel []float32

	upBuf []byte // reusable upload frame body
}

// NewFedAvgTrainer wires a trainer around a client's model and data.
func NewFedAvgTrainer(spec models.Spec, train, val *data.Dataset, id int, opts fl.LocalOpts, seed int64) *FedAvgTrainer {
	m := models.Build(spec, seed)
	c := &fl.Client{ID: id, Train: train, Val: val, Model: m}
	if opts.Params == nil {
		opts.Params = m.Params()
	}
	return &FedAvgTrainer{Client: c, Opts: opts, Seed: seed}
}

// upload serializes the client model into the trainer-owned buffer,
// reused across rounds (the frame is written out before the next
// broadcast arrives).
func (t *FedAvgTrainer) upload() []byte {
	n := t.Client.Model.StateLen(models.ScopeAll)
	state := t.Client.Model.StateInto(models.ScopeAll, comm.GetF32(n))
	t.upBuf = comm.EncodeDenseInto(t.upBuf, state)
	comm.PutF32(state)
	return t.upBuf
}

// LocalUpdate implements Trainer.
func (t *FedAvgTrainer) LocalUpdate(round int, payload []byte) []byte {
	state, err := comm.DecodeDenseInto(comm.GetF32(t.Client.Model.StateLen(models.ScopeAll)), payload)
	if err != nil {
		return t.upload()
	}
	t.Client.Model.SetState(models.ScopeAll, state)
	comm.PutF32(state)
	rng := rand.New(rand.NewSource(t.Seed*1009 + int64(round)*31 + int64(t.Client.ID)))
	opts := t.Opts
	opts.Params = t.Client.Model.Params()
	fl.LocalSGD(t.Client, opts, rng)
	return t.upload()
}

// Finish implements Trainer.
func (t *FedAvgTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDense(payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
		t.FinalModel = state
	}
}
