package flnet

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

// FedAvgAggregator implements Aggregator with data-size-weighted model
// averaging over dense checkpoint payloads — FedAvg deployed on the
// wire.
type FedAvgAggregator struct {
	Global *models.SplitModel

	sum    []float64
	weight float64
}

// Broadcast implements Aggregator.
func (a *FedAvgAggregator) Broadcast(round int) []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// Collect implements Aggregator.
func (a *FedAvgAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	state, err := comm.DecodeDense(payload)
	if err != nil {
		// A corrupt upload is dropped; the round proceeds with the rest.
		return
	}
	if a.sum == nil {
		a.sum = make([]float64, len(state))
	}
	w := float64(trainSize)
	for i, v := range state {
		a.sum[i] += w * float64(v)
	}
	a.weight += w
}

// FinishRound implements Aggregator.
func (a *FedAvgAggregator) FinishRound(round int) {
	if a.weight == 0 {
		return
	}
	state := make([]float32, len(a.sum))
	for i, v := range a.sum {
		state[i] = float32(v / a.weight)
	}
	a.Global.SetState(models.ScopeAll, state)
	a.sum, a.weight = nil, 0
}

// Final implements Aggregator.
func (a *FedAvgAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedAvgTrainer implements Trainer: install the broadcast model, run
// local SGD on the private shard, upload the result.
type FedAvgTrainer struct {
	Client *fl.Client
	Opts   fl.LocalOpts
	Seed   int64

	// FinalModel is populated by Finish.
	FinalModel []float32
}

// NewFedAvgTrainer wires a trainer around a client's model and data.
func NewFedAvgTrainer(spec models.Spec, train, val *data.Dataset, id int, opts fl.LocalOpts, seed int64) *FedAvgTrainer {
	m := models.Build(spec, seed)
	c := &fl.Client{ID: id, Train: train, Val: val, Model: m}
	if opts.Params == nil {
		opts.Params = m.Params()
	}
	return &FedAvgTrainer{Client: c, Opts: opts, Seed: seed}
}

// LocalUpdate implements Trainer.
func (t *FedAvgTrainer) LocalUpdate(round int, payload []byte) []byte {
	state, err := comm.DecodeDense(payload)
	if err != nil {
		return comm.EncodeDense(t.Client.Model.State(models.ScopeAll))
	}
	t.Client.Model.SetState(models.ScopeAll, state)
	rng := rand.New(rand.NewSource(t.Seed*1009 + int64(round)*31 + int64(t.Client.ID)))
	opts := t.Opts
	opts.Params = t.Client.Model.Params()
	fl.LocalSGD(t.Client, opts, rng)
	return comm.EncodeDense(t.Client.Model.State(models.ScopeAll))
}

// Finish implements Trainer.
func (t *FedAvgTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDense(payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
		t.FinalModel = state
	}
}
