// Package flnet runs federated learning over real TCP connections: a
// central aggregation server and one process (or goroutine) per client,
// exchanging the same wire payloads the in-process simulator meters
// (internal/comm). The algorithms themselves live in internal/algo —
// the identical Aggregator/Trainer cores the simulator (internal/fl)
// drives in-process — so a federation produces bitwise-identical models
// whichever transport carries it (see the cross-transport equivalence
// test). flnet adds what a real network demands: framing, read/write
// deadlines, and straggler tolerance — a round aggregates whatever
// arrived before the timeout instead of aborting the federation.
//
// The protocol is deliberately small: length-prefixed frames carrying a
// message type, a round number, and an opaque payload whose encoding is
// owned by the algorithm layer (dense or sparse comm payloads).
package flnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/telemetry"
)

// Message types.
const (
	// MsgHello registers a client: payload is 4 bytes of training-set
	// size (for data-weighted aggregation).
	MsgHello = uint8(iota + 1)
	// MsgRoundStart carries the server's broadcast for a round.
	MsgRoundStart
	// MsgUpdate carries a client's upload for a round.
	MsgUpdate
	// MsgDone carries the final model; the client disconnects after it.
	MsgDone
	// MsgEdgeHello registers an edge aggregator with a tree root: the
	// frame's Client field carries the shard ID, the payload a count
	// followed by (client ID, train size) pairs for the shard's clients.
	MsgEdgeHello
	// MsgShardUpdate carries an edge's pooled shard payload for a round
	// (algo.ShardBuffer wire format); Client is the shard ID.
	MsgShardUpdate
)

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 30

// frameHeaderLen is the wire overhead per frame: uint32 length prefix
// plus type, client and round fields.
const frameHeaderLen = 4 + 1 + 4 + 4

// Frame is one protocol message.
type Frame struct {
	Type    uint8
	Client  uint32
	Round   uint32
	Payload []byte

	// body is the pooled backing buffer Payload slices into (nil for
	// frames not produced by ReadFrame).
	body []byte
}

// Release returns the frame's pooled backing buffer. Call it once the
// payload has been consumed; the Payload slice is invalid afterwards.
func (f *Frame) Release() {
	if f.body != nil {
		comm.PutBuf(f.body)
		f.body = nil
		f.Payload = nil
	}
}

// WriteFrame writes f to w: uint32 total length, type, client, round,
// payload. The header goes through a pooled scratch buffer, so steady
// rounds allocate nothing.
func WriteFrame(w io.Writer, f Frame) error {
	header := comm.GetBuf(frameHeaderLen)
	binary.LittleEndian.PutUint32(header[0:4], uint32(1+4+4+len(f.Payload)))
	header[4] = f.Type
	binary.LittleEndian.PutUint32(header[5:9], f.Client)
	binary.LittleEndian.PutUint32(header[9:13], f.Round)
	_, err := w.Write(header)
	comm.PutBuf(header)
	if err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r into a pooled body buffer; call
// Release on the returned frame once its payload is consumed.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxFrame {
		return Frame{}, fmt.Errorf("flnet: implausible frame length %d", n)
	}
	body := comm.GetBuf(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		comm.PutBuf(body)
		return Frame{}, err
	}
	return Frame{
		Type:    body[0],
		Client:  binary.LittleEndian.Uint32(body[1:5]),
		Round:   binary.LittleEndian.Uint32(body[5:9]),
		Payload: body[9:],
		body:    body,
	}, nil
}

// Aggregator is the transport-agnostic server-side algorithm core; see
// internal/algo.
type Aggregator = algo.Aggregator

// Trainer is the transport-agnostic client-side algorithm core; see
// internal/algo.
type Trainer = algo.Trainer

// ServerConfig configures a federation server.
type ServerConfig struct {
	// Addr to listen on; ":0" picks a free port.
	Addr string
	// Clients is the number of registrations to wait for.
	Clients int
	// Rounds of federated training to run.
	Rounds int
	// PerRound is how many clients participate each round (0 = all).
	PerRound int
	// Seed drives client sampling.
	Seed int64

	// HelloTimeout bounds how long an accepted connection may take to
	// present its hello frame. Zero waits forever.
	HelloTimeout time.Duration
	// StragglerTimeout bounds how long the server waits for a selected
	// client's round upload. A client that misses the deadline is marked
	// dead and its contribution dropped — the round aggregates from the
	// clients that reported instead of failing the federation. Zero
	// waits forever.
	StragglerTimeout time.Duration
	// WriteTimeout bounds each broadcast write to a client. Zero waits
	// forever.
	WriteTimeout time.Duration

	// Quorum, when positive, switches the server to buffered/async
	// rounds (FedBuff-style): FinishRound fires as soon as Quorum of
	// the round's sampled uploads have been collected, without waiting
	// for the stragglers. A straggler's upload is not lost — it folds
	// into the round in progress when it eventually arrives, counted in
	// "flnet.late_uploads" and journaled as a late_upload event. Zero
	// keeps the synchronous round loop.
	Quorum int

	// Tel, when set, receives the server's lifecycle journal events and
	// exposes its drop/error counters through the registry; it is also
	// wired into the aggregator core. Nil disables telemetry.
	Tel *telemetry.Set
}

// ClientStats is the server's per-client health record.
type ClientStats struct {
	ID        uint32
	TrainSize int
	// Alive reports whether the connection was still usable when the
	// federation ended.
	Alive bool
	// Drops counts rounds where the client was selected but its
	// contribution was not aggregated (dead, timed out, or errored).
	Drops int
	// Errors counts protocol or I/O failures observed on the connection
	// (a straggler timeout alone is a drop, not an error).
	Errors int
}

// Server orchestrates rounds over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	clients []*clientConn

	// Stats, populated by Run. UpBytes/DownBytes count full frames
	// (headers included); the *PayloadBytes variants count algorithm
	// payloads only, matching the in-process simulator's comm.Meter.
	UpBytes          int64
	DownBytes        int64
	UpPayloadBytes   int64
	DownPayloadBytes int64

	// drops/errs aggregate the per-client counters below as telemetry
	// counters, attached in the registry as "flnet.drops" and
	// "flnet.errors" when telemetry is on; Drops/Errors read the same
	// counters.
	drops telemetry.Counter
	errs  telemetry.Counter
	// late counts straggler uploads folded into a later round than the
	// one they were computed for (async quorum mode only), exposed as
	// "flnet.late_uploads".
	late telemetry.Counter
}

// Drops reports total dropped contributions across all clients and
// rounds — the same counter the registry exposes as "flnet.drops".
func (s *Server) Drops() int64 { return s.drops.Value() }

// Errors reports total protocol/I-O failures across all clients — the
// same counter the registry exposes as "flnet.errors".
func (s *Server) Errors() int64 { return s.errs.Value() }

// LateUploads reports how many straggler uploads were folded into a
// later round (async quorum mode) — the same counter the registry
// exposes as "flnet.late_uploads".
func (s *Server) LateUploads() int64 { return s.late.Value() }

// NewServer starts listening (so clients can connect before Run).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: Clients and Rounds must be positive")
	}
	if cfg.PerRound <= 0 || cfg.PerRound > cfg.Clients {
		cfg.PerRound = cfg.Clients
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln}
	if cfg.Tel != nil && cfg.Tel.Reg != nil {
		cfg.Tel.Reg.Attach("flnet.drops", &s.drops)
		cfg.Tel.Reg.Attach("flnet.errors", &s.errs)
		cfg.Tel.Reg.Attach("flnet.late_uploads", &s.late)
	}
	return s, nil
}

// Addr returns the listening address (use after NewServer with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ClientStats returns the per-client health records. Call after Run.
func (s *Server) ClientStats() []ClientStats {
	out := make([]ClientStats, len(s.clients))
	for i, c := range s.clients {
		out[i] = ClientStats{
			ID: c.id, TrainSize: c.trainSize, Alive: c.alive,
			Drops: c.drops, Errors: c.errs,
		}
	}
	return out
}

// clientConn is the server's view of one registered client.
type clientConn struct {
	id        uint32
	trainSize int
	conn      net.Conn
	alive     bool
	drops     int
	errs      int
}

// markDead closes the connection and excludes the client from future
// traffic; its sampling slot stays occupied and counts drops.
func (c *clientConn) markDead() {
	if c.alive {
		c.alive = false
		c.conn.Close()
	}
}

// Run accepts registrations, executes the round loop (synchronous, or
// buffered/async when cfg.Quorum is set) and broadcasts the final
// model. A malformed hello still fails fast — the federation has not
// started — but once rounds begin, client failures and stragglers are
// tolerated: their contributions are dropped (see ClientStats) and
// each round aggregates whatever arrived. Run errors only when every
// client is dead.
func (s *Server) Run(agg Aggregator) error {
	defer s.ln.Close()
	if err := s.acceptClients(); err != nil {
		return err
	}
	defer func() {
		for _, c := range s.clients {
			c.conn.Close()
		}
	}()
	algo.Wire(s.cfg.Tel, agg)
	if s.cfg.Quorum > 0 {
		if err := s.runAsync(agg); err != nil {
			return err
		}
	} else if err := s.runSync(agg); err != nil {
		return err
	}
	return s.sendFinal(agg)
}

// acceptClients waits for every registration and orders the client
// table by ID, so collect order is reproducible across runs.
func (s *Server) acceptClients() error {
	s.clients = make([]*clientConn, 0, s.cfg.Clients)
	for len(s.clients) < s.cfg.Clients {
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("flnet: accept: %w", err)
		}
		if s.cfg.HelloTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != MsgHello || len(f.Payload) < 4 {
			conn.Close()
			f.Release()
			return fmt.Errorf("flnet: bad hello from %s: %v", conn.RemoteAddr(), err)
		}
		conn.SetReadDeadline(time.Time{})
		s.UpBytes += int64(frameHeaderLen + len(f.Payload))
		s.clients = append(s.clients, &clientConn{
			id:        f.Client,
			trainSize: int(binary.LittleEndian.Uint32(f.Payload)),
			conn:      conn,
			alive:     true,
		})
		f.Release()
	}
	// Clients register in connection order, which is not reproducible;
	// aggregate in client-ID order so collect order — and therefore the
	// floating-point reduction — matches the in-process simulator bitwise.
	sort.Slice(s.clients, func(i, j int) bool { return s.clients[i].id < s.clients[j].id })
	return nil
}

// runSync is the synchronous round loop: every round waits for all
// selected uploads (or the straggler deadline) before aggregating.
//
// With a streaming aggregator (algo.StreamingAggregator — every
// aggregator this repo ships) each upload folds the moment its frame is
// read: the receive loop calls Collect in arrival order and releases
// the frame immediately, so round memory is the aggregator's staging
// bound, not one held frame per selected client. The fold itself is
// order-independent (the cursor/staging machinery replays arrivals in
// selection order), and journal events are still emitted from the
// sequential pass below in selection order — the journal bytes are
// identical to the buffered path's.
func (s *Server) runSync(agg Aggregator) error {
	tel := s.cfg.Tel
	rng := newRng(s.cfg.Seed)
	streamAgg, _ := agg.(algo.StreamingAggregator)
	// Per-position outcome of a round, for journal emission in selection
	// order after the concurrent collect.
	const (
		outcomeDrop      = uint8(iota) // dead, I/O error or bad frame
		outcomeStraggler               // missed the straggler deadline
		outcomeUpload                  // contribution aggregated
	)
	for round := 0; round < s.cfg.Rounds; round++ {
		payload := agg.Broadcast(round)
		selected := samplePerm(rng, len(s.clients), s.cfg.PerRound)
		if streamAgg != nil {
			ids := make([]uint32, len(selected))
			for i, ci := range selected {
				ids[i] = s.clients[ci].id
			}
			streamAgg.BeginRound(round, ids)
		}
		tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))
		roundStart := time.Now()
		// Broadcast to the sampled clients that are still alive.
		awaiting := make([]bool, len(selected))
		outcomes := make([]uint8, len(selected))
		for pos, ci := range selected {
			c := s.clients[ci]
			if !c.alive {
				c.drops++
				s.drops.Inc()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
				continue
			}
			if s.cfg.WriteTimeout > 0 {
				c.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			f := Frame{Type: MsgRoundStart, Client: c.id, Round: uint32(round), Payload: payload}
			if err := WriteFrame(c.conn, f); err != nil {
				c.errs++
				c.drops++
				s.errs.Inc()
				s.drops.Inc()
				c.markDead()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
				continue
			}
			s.DownBytes += int64(frameHeaderLen + len(payload))
			s.DownPayloadBytes += int64(len(payload))
			awaiting[pos] = true
		}
		// Collect uploads concurrently, aggregate sequentially in
		// selection order for determinism.
		type result struct {
			idx   int
			frame Frame
			err   error
		}
		results := make(chan result, len(selected))
		inflight := 0
		for pos, ci := range selected {
			if !awaiting[pos] {
				continue
			}
			inflight++
			c := s.clients[ci]
			if s.cfg.StragglerTimeout > 0 {
				c.conn.SetReadDeadline(time.Now().Add(s.cfg.StragglerTimeout))
			}
			go func(pos int, c *clientConn) {
				f, err := ReadFrame(c.conn)
				results <- result{idx: pos, frame: f, err: err}
			}(pos, c)
		}
		frames := make([]*Frame, len(selected))
		recvNS := make([]int64, len(selected))
		upLens := make([]int64, len(selected))
		for ; inflight > 0; inflight-- {
			r := <-results
			c := s.clients[selected[r.idx]]
			switch {
			case r.err != nil:
				var ne net.Error
				if errors.As(r.err, &ne) && ne.Timeout() {
					outcomes[r.idx] = outcomeStraggler
				} else {
					c.errs++ // real I/O failure, not just a straggler
					s.errs.Inc()
				}
				c.drops++
				s.drops.Inc()
				c.markDead()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
			case r.frame.Type != MsgUpdate || int(r.frame.Round) != round:
				c.errs++
				c.drops++
				s.errs.Inc()
				s.drops.Inc()
				c.markDead()
				r.frame.Release()
				if streamAgg != nil {
					streamAgg.MarkAbsent(round, c.id)
				}
			default:
				recvNS[r.idx] = time.Since(roundStart).Nanoseconds()
				upLens[r.idx] = int64(len(r.frame.Payload))
				outcomes[r.idx] = outcomeUpload
				if streamAgg != nil {
					// Fold on arrival: the payload is decoded into the
					// aggregator's own pooled buffers, so the frame
					// recycles here instead of living until the
					// sequential pass.
					streamAgg.Collect(round, c.id, c.trainSize, r.frame.Payload)
					r.frame.Release()
				} else {
					f := r.frame
					frames[r.idx] = &f
				}
			}
		}
		collected := 0
		for pos, ci := range selected {
			c := s.clients[ci]
			switch outcomes[pos] {
			case outcomeUpload:
				c.conn.SetReadDeadline(time.Time{})
				s.UpBytes += int64(frameHeaderLen) + upLens[pos]
				s.UpPayloadBytes += upLens[pos]
				tel.Emit(telemetry.ClientUpload(round, int(c.id), upLens[pos], recvNS[pos]))
				if streamAgg == nil {
					agg.Collect(round, c.id, c.trainSize, frames[pos].Payload)
					frames[pos].Release()
				}
				collected++
			case outcomeStraggler:
				tel.Emit(telemetry.Straggler(round, int(c.id)))
			default:
				tel.Emit(telemetry.Drop(round, int(c.id)))
			}
		}
		t0 := time.Now()
		agg.FinishRound(round)
		tel.Emit(telemetry.Aggregate(round, collected, time.Since(t0).Nanoseconds()))
		tel.Emit(telemetry.RoundEnd(round, s.UpPayloadBytes, s.DownPayloadBytes))

		anyAlive := false
		for _, c := range s.clients {
			if c.alive {
				anyAlive = true
				break
			}
		}
		if !anyAlive {
			return fmt.Errorf("flnet: all %d clients dead after round %d", len(s.clients), round)
		}
	}
	return nil
}

// sendFinal broadcasts the aggregator's final model to every surviving
// client.
func (s *Server) sendFinal(agg Aggregator) error {
	final := agg.Final()
	for _, c := range s.clients {
		if !c.alive {
			continue
		}
		if s.cfg.WriteTimeout > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		f := Frame{Type: MsgDone, Client: c.id, Payload: final}
		if err := WriteFrame(c.conn, f); err != nil {
			c.errs++
			c.markDead()
			continue
		}
		s.DownBytes += int64(frameHeaderLen + len(final))
		s.DownPayloadBytes += int64(len(final))
	}
	return nil
}

// ClientOptions tunes RunClientOpts.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect (default 30s).
	DialTimeout time.Duration
	// HelloTimeout bounds writing the registration frame (default 30s).
	HelloTimeout time.Duration

	// Tel, when set, receives this client's lifecycle events
	// (client_train, client_upload, client_apply) and is wired into the
	// trainer core. Each client owns its set — client events never mix
	// into the server journal.
	Tel *telemetry.Set
}

// RunClient connects to a federation server, participates in every round
// it is sampled for, and returns after receiving the final model. It
// uses the default 30-second dial and hello timeouts.
func RunClient(addr string, clientID uint32, trainSize int, tr Trainer) error {
	return RunClientOpts(addr, clientID, trainSize, tr, ClientOptions{})
}

// RunClientOpts is RunClient with explicit connection timeouts.
func RunClientOpts(addr string, clientID uint32, trainSize int, tr Trainer, opts ClientOptions) error {
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 30 * time.Second
	}
	if opts.HelloTimeout == 0 {
		opts.HelloTimeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(trainSize))
	conn.SetWriteDeadline(time.Now().Add(opts.HelloTimeout))
	if err := WriteFrame(conn, Frame{Type: MsgHello, Client: clientID, Payload: hello[:]}); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	tel := opts.Tel
	algo.Wire(tel, tr)
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("flnet: client %d read: %w", clientID, err)
		}
		switch f.Type {
		case MsgRoundStart:
			round := int(f.Round)
			t0 := time.Now()
			up := tr.LocalUpdate(round, f.Payload)
			tel.Emit(telemetry.ClientTrain(round, int(clientID), time.Since(t0).Nanoseconds()))
			f.Release()
			if err := WriteFrame(conn, Frame{Type: MsgUpdate, Client: clientID, Round: f.Round, Payload: up}); err != nil {
				return err
			}
			tel.Emit(telemetry.ClientUpload(round, int(clientID), int64(len(up)), time.Since(t0).Nanoseconds()))
		case MsgDone:
			tr.Finish(f.Payload)
			tel.Emit(telemetry.ClientApply(int(f.Round), int(clientID), int64(len(f.Payload))))
			f.Release()
			return nil
		default:
			f.Release()
			return fmt.Errorf("flnet: client %d: unexpected frame type %d", clientID, f.Type)
		}
	}
}
