// Package flnet runs federated learning over real TCP connections: a
// central aggregation server and one process (or goroutine) per client,
// exchanging the same wire payloads the in-process simulator meters
// (internal/comm). The in-process engine (internal/fl) is the tool for
// experiments; flnet demonstrates that the algorithms deploy unchanged
// across a network — the scalability claim of the paper's HPC framing.
//
// The protocol is deliberately small: length-prefixed frames carrying a
// message type, a round number, and an opaque payload whose encoding is
// owned by the algorithm layer (dense or sparse comm payloads).
package flnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Message types.
const (
	// MsgHello registers a client: payload is 4 bytes of training-set
	// size (for data-weighted aggregation).
	MsgHello = uint8(iota + 1)
	// MsgRoundStart carries the server's broadcast for a round.
	MsgRoundStart
	// MsgUpdate carries a client's upload for a round.
	MsgUpdate
	// MsgDone carries the final model; the client disconnects after it.
	MsgDone
)

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 1 << 30

// Frame is one protocol message.
type Frame struct {
	Type    uint8
	Client  uint32
	Round   uint32
	Payload []byte
}

// WriteFrame writes f to w: uint32 total length, type, client, round,
// payload.
func WriteFrame(w io.Writer, f Frame) error {
	header := make([]byte, 4+1+4+4)
	binary.LittleEndian.PutUint32(header[0:4], uint32(1+4+4+len(f.Payload)))
	header[4] = f.Type
	binary.LittleEndian.PutUint32(header[5:9], f.Client)
	binary.LittleEndian.PutUint32(header[9:13], f.Round)
	if _, err := w.Write(header); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 || n > maxFrame {
		return Frame{}, fmt.Errorf("flnet: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	return Frame{
		Type:    body[0],
		Client:  binary.LittleEndian.Uint32(body[1:5]),
		Round:   binary.LittleEndian.Uint32(body[5:9]),
		Payload: body[9:],
	}, nil
}

// Aggregator is the server-side algorithm hook. Implementations own the
// payload encoding; flnet only transports bytes.
type Aggregator interface {
	// Broadcast produces the payload sent to every sampled client at the
	// start of round.
	Broadcast(round int) []byte
	// Collect consumes one sampled client's upload. Called sequentially.
	Collect(round int, client uint32, trainSize int, payload []byte)
	// FinishRound runs after all sampled clients reported.
	FinishRound(round int)
	// Final produces the payload broadcast with MsgDone.
	Final() []byte
}

// Trainer is the client-side algorithm hook.
type Trainer interface {
	// LocalUpdate consumes a round broadcast and returns the upload.
	LocalUpdate(round int, payload []byte) []byte
	// Finish consumes the final model payload.
	Finish(payload []byte)
}

// ServerConfig configures a federation server.
type ServerConfig struct {
	// Addr to listen on; ":0" picks a free port.
	Addr string
	// Clients is the number of registrations to wait for.
	Clients int
	// Rounds of federated training to run.
	Rounds int
	// PerRound is how many clients participate each round (0 = all).
	PerRound int
	// Seed drives client sampling.
	Seed int64
}

// Server orchestrates rounds over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// Stats, populated by Run.
	UpBytes   int64
	DownBytes int64
}

// NewServer starts listening (so clients can connect before Run).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: Clients and Rounds must be positive")
	}
	if cfg.PerRound <= 0 || cfg.PerRound > cfg.Clients {
		cfg.PerRound = cfg.Clients
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, ln: ln}, nil
}

// Addr returns the listening address (use after NewServer with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// clientConn is the server's view of one registered client.
type clientConn struct {
	id        uint32
	trainSize int
	conn      net.Conn
}

// Run accepts registrations, executes the round loop and broadcasts the
// final model. It returns after all clients have been served.
func (s *Server) Run(agg Aggregator) error {
	defer s.ln.Close()
	clients := make([]*clientConn, 0, s.cfg.Clients)
	for len(clients) < s.cfg.Clients {
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("flnet: accept: %w", err)
		}
		f, err := ReadFrame(conn)
		if err != nil || f.Type != MsgHello || len(f.Payload) < 4 {
			conn.Close()
			return fmt.Errorf("flnet: bad hello from %s: %v", conn.RemoteAddr(), err)
		}
		clients = append(clients, &clientConn{
			id:        f.Client,
			trainSize: int(binary.LittleEndian.Uint32(f.Payload)),
			conn:      conn,
		})
	}
	defer func() {
		for _, c := range clients {
			c.conn.Close()
		}
	}()

	rng := newRng(s.cfg.Seed)
	for round := 0; round < s.cfg.Rounds; round++ {
		payload := agg.Broadcast(round)
		selected := samplePerm(rng, len(clients), s.cfg.PerRound)
		// Broadcast to the sampled clients.
		for _, ci := range selected {
			c := clients[ci]
			f := Frame{Type: MsgRoundStart, Client: c.id, Round: uint32(round), Payload: payload}
			if err := WriteFrame(c.conn, f); err != nil {
				return fmt.Errorf("flnet: broadcast to client %d: %w", c.id, err)
			}
			s.DownBytes += int64(len(payload))
		}
		// Collect uploads concurrently, aggregate sequentially in
		// selection order for determinism.
		type result struct {
			idx   int
			frame Frame
			err   error
		}
		results := make(chan result, len(selected))
		for pos, ci := range selected {
			go func(pos, ci int) {
				f, err := ReadFrame(clients[ci].conn)
				results <- result{idx: pos, frame: f, err: err}
			}(pos, ci)
		}
		frames := make([]Frame, len(selected))
		for range selected {
			r := <-results
			if r.err != nil {
				return fmt.Errorf("flnet: collect round %d: %w", round, r.err)
			}
			if r.frame.Type != MsgUpdate || int(r.frame.Round) != round {
				return fmt.Errorf("flnet: unexpected frame type=%d round=%d", r.frame.Type, r.frame.Round)
			}
			frames[r.idx] = r.frame
		}
		for pos, ci := range selected {
			c := clients[ci]
			s.UpBytes += int64(len(frames[pos].Payload))
			agg.Collect(round, c.id, c.trainSize, frames[pos].Payload)
		}
		agg.FinishRound(round)
	}

	final := agg.Final()
	for _, c := range clients {
		f := Frame{Type: MsgDone, Client: c.id, Payload: final}
		if err := WriteFrame(c.conn, f); err != nil {
			return fmt.Errorf("flnet: final broadcast to %d: %w", c.id, err)
		}
		s.DownBytes += int64(len(final))
	}
	return nil
}

// RunClient connects to a federation server, participates in every round
// it is sampled for, and returns after receiving the final model.
func RunClient(addr string, clientID uint32, trainSize int, tr Trainer) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	hello := make([]byte, 4)
	binary.LittleEndian.PutUint32(hello, uint32(trainSize))
	if err := WriteFrame(conn, Frame{Type: MsgHello, Client: clientID, Payload: hello}); err != nil {
		return err
	}
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("flnet: client %d read: %w", clientID, err)
		}
		switch f.Type {
		case MsgRoundStart:
			up := tr.LocalUpdate(int(f.Round), f.Payload)
			if err := WriteFrame(conn, Frame{Type: MsgUpdate, Client: clientID, Round: f.Round, Payload: up}); err != nil {
				return err
			}
		case MsgDone:
			tr.Finish(f.Payload)
			return nil
		default:
			return fmt.Errorf("flnet: client %d: unexpected frame type %d", clientID, f.Type)
		}
	}
}
