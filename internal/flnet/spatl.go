package flnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
)

// JoinPayloads concatenates multiple byte payloads into one frame body
// with uint32 length prefixes, so an algorithm can ship several comm
// blobs (model delta + control delta) per message.
func JoinPayloads(parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	var lenBuf [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
		out = append(out, lenBuf[:]...)
		out = append(out, p...)
	}
	return out
}

// SplitPayloads reverses JoinPayloads.
func SplitPayloads(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("flnet: truncated payload header")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if int(n) > len(buf) {
			return nil, fmt.Errorf("flnet: payload part length %d exceeds remaining %d", n, len(buf))
		}
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	return out, nil
}

// SPATLAggregator implements Aggregator with SPATL's server side:
// encoder-only broadcast (plus the control variate), per-index averaged
// aggregation of the salient sparse deltas (eq. 12), and eq. 11's
// control-variate update.
type SPATLAggregator struct {
	Global *models.SplitModel
	// Clients is the federation size N (for the 1/N control update).
	Clients int

	c     []float32
	sum   []float32
	count []int32
}

// NewSPATLAggregator wires the aggregator around the global model.
func NewSPATLAggregator(global *models.SplitModel, clients int) *SPATLAggregator {
	return &SPATLAggregator{
		Global:  global,
		Clients: clients,
		c:       make([]float32, nn.ParamCount(global.EncoderParams())),
	}
}

// Broadcast implements Aggregator.
func (a *SPATLAggregator) Broadcast(round int) []byte {
	return JoinPayloads(
		comm.EncodeDense(a.Global.State(models.ScopeEncoder)),
		comm.EncodeDense(a.c),
	)
}

// Collect implements Aggregator.
func (a *SPATLAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return // drop malformed upload
	}
	dW, err := comm.DecodeSparse(parts[0])
	if err != nil {
		return
	}
	if a.sum == nil {
		n := a.Global.StateLen(models.ScopeEncoder)
		a.sum = make([]float32, n)
		a.count = make([]int32, n)
	}
	comm.ScatterAdd(a.sum, a.count, dW)
	if dC, err := comm.DecodeSparse(parts[1]); err == nil {
		invN := float32(1.0 / float64(a.Clients))
		off := 0
		for _, r := range dC.Ranges {
			for k := uint32(0); k < r.Len; k++ {
				a.c[r.Start+k] += invN * dC.Values[off]
				off++
			}
		}
	}
}

// FinishRound implements Aggregator.
func (a *SPATLAggregator) FinishRound(round int) {
	if a.sum == nil {
		return
	}
	state := a.Global.State(models.ScopeEncoder)
	for i := range state {
		if a.count[i] > 0 {
			state[i] += a.sum[i] / float32(a.count[i])
		}
	}
	a.Global.SetState(models.ScopeEncoder, state)
	a.sum, a.count = nil, nil
}

// Final implements Aggregator.
func (a *SPATLAggregator) Final() []byte {
	return JoinPayloads(comm.EncodeDense(a.Global.State(models.ScopeEncoder)))
}

// SPATLTrainer implements Trainer with SPATL's client side: encoder
// install, gradient-controlled local update through the private
// predictor, salient selection via the RL agent, sparse upload.
type SPATLTrainer struct {
	Client *fl.Client
	Opts   fl.LocalOpts
	Agent  *rl.Agent
	// FLOPsBudget for the selection agent (default 0.6).
	FLOPsBudget float64
	// FineTuneRounds of agent head adaptation at the start (default 2).
	FineTuneRounds int
	Seed           int64

	control []float32
}

// NewSPATLTrainer builds a client-side SPATL participant.
func NewSPATLTrainer(spec models.Spec, train, val *data.Dataset, id int, opts fl.LocalOpts, agentCfg rl.AgentConfig, seed int64) *SPATLTrainer {
	m := models.Build(spec, seed)
	agentCfg.Seed += int64(id)
	t := &SPATLTrainer{
		Client:         &fl.Client{ID: id, Train: train, Val: val, Model: m},
		Opts:           opts,
		Agent:          rl.NewAgent(agentCfg),
		FLOPsBudget:    0.6,
		FineTuneRounds: 2,
		Seed:           seed,
	}
	t.control = make([]float32, nn.ParamCount(m.EncoderParams()))
	return t
}

// LocalUpdate implements Trainer.
func (t *SPATLTrainer) LocalUpdate(round int, payload []byte) []byte {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return JoinPayloads(nil, nil)
	}
	globalState, err1 := comm.DecodeDense(parts[0])
	serverC, err2 := comm.DecodeDense(parts[1])
	if err1 != nil || err2 != nil {
		return JoinPayloads(nil, nil)
	}
	m := t.Client.Model
	m.SetState(models.ScopeEncoder, globalState)

	encP := m.EncoderParams()
	gBefore := nn.FlattenParams(encP)
	rng := rand.New(rand.NewSource(t.Seed*1013 + int64(round)*37 + int64(t.Client.ID)))
	opts := t.Opts
	opts.Params = m.Params()
	opts.Hook = func(params []*nn.Param) {
		off := 0
		for _, p := range encP {
			for j := range p.G.Data {
				p.G.Data[j] += serverC[off+j] - t.control[off+j]
			}
			off += p.W.Len()
		}
	}
	steps, _ := fl.LocalSGD(t.Client, opts, rng)

	// Control update (option II) over the encoder.
	localCtrl := nn.FlattenParams(encP)
	inv := 1.0 / (float64(steps) * fl.EffectiveLR(opts.LR, opts.Momentum))
	dC := make([]float32, len(localCtrl))
	for j := range localCtrl {
		newC := t.control[j] - serverC[j] + float32(float64(gBefore[j]-localCtrl[j])*inv)
		dC[j] = newC - t.control[j]
		t.control[j] = newC
	}

	// Salient selection.
	env := prune.NewEnv(m, t.Client.Val, t.FLOPsBudget)
	if round < t.FineTuneRounds {
		ppo := rl.NewPPO(t.Agent, true)
		rl.Train(ppo, env, 1, 2, rng)
	}
	sel := prune.Select(m, rl.BestAction(t.Agent, env))

	localState := m.State(models.ScopeEncoder)
	dW := make([]float32, len(localState))
	for j := range localState {
		dW[j] = localState[j] - globalState[j]
	}
	ctrlRanges := clipRangesTo(sel.Ranges, len(dC))
	return JoinPayloads(
		comm.EncodeSparse(comm.GatherSparse(dW, sel.Ranges)),
		comm.EncodeSparse(comm.GatherSparse(dC, ctrlRanges)),
	)
}

// Finish implements Trainer.
func (t *SPATLTrainer) Finish(payload []byte) {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) < 1 {
		return
	}
	if state, err := comm.DecodeDense(parts[0]); err == nil {
		t.Client.Model.SetState(models.ScopeEncoder, state)
	}
}

// clipRangesTo restricts index ranges to [0, n) — the control vector is
// the trainable prefix of the encoder state vector.
func clipRangesTo(ranges []comm.Range, n int) []comm.Range {
	out := make([]comm.Range, 0, len(ranges))
	for _, r := range ranges {
		if int(r.Start) >= n {
			break
		}
		if int(r.Start+r.Len) > n {
			r.Len = uint32(n) - r.Start
		}
		if r.Len > 0 {
			out = append(out, r)
		}
	}
	return out
}
