package flnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
	"spatl/internal/tensor"
)

// JoinPayloads concatenates multiple byte payloads into one frame body
// with uint32 length prefixes, so an algorithm can ship several comm
// blobs (model delta + control delta) per message.
func JoinPayloads(parts ...[]byte) []byte {
	return JoinPayloadsInto(nil, parts...)
}

// JoinPayloadsInto is JoinPayloads appending into dst[:0]'s backing
// array (grown when the capacity is insufficient), so aggregators and
// trainers can frame rounds into a reusable buffer.
func JoinPayloadsInto(dst []byte, parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := dst[:0]
	if cap(out) < n {
		out = make([]byte, 0, n)
	}
	var lenBuf [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
		out = append(out, lenBuf[:]...)
		out = append(out, p...)
	}
	return out
}

// SplitPayloads reverses JoinPayloads.
func SplitPayloads(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("flnet: truncated payload header")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if int(n) > len(buf) {
			return nil, fmt.Errorf("flnet: payload part length %d exceeds remaining %d", n, len(buf))
		}
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	return out, nil
}

// SPATLAggregator implements Aggregator with SPATL's server side:
// encoder-only broadcast (plus the control variate), per-index averaged
// aggregation of the salient sparse deltas (eq. 12), and eq. 11's
// control-variate update.
type SPATLAggregator struct {
	Global *models.SplitModel
	// Clients is the federation size N (for the 1/N control update).
	Clients int

	c       []float32
	pending []spatlUpload // decoded uploads buffered in arrival order
	count   []int32       // per-index contributor count, reused across rounds
	bcast   []byte        // reusable broadcast frame body
	dropped atomic.Int64
}

// spatlUpload is one client's decoded round contribution.
type spatlUpload struct {
	dW *comm.Sparse
	dC *comm.Sparse
}

// NewSPATLAggregator wires the aggregator around the global model.
func NewSPATLAggregator(global *models.SplitModel, clients int) *SPATLAggregator {
	return &SPATLAggregator{
		Global:  global,
		Clients: clients,
		c:       make([]float32, nn.ParamCount(global.EncoderParams())),
	}
}

// Dropped reports how many malformed uploads the aggregator has
// discarded since construction. A nonzero value means clients (or the
// transport) are misbehaving — silently losing contributions skews the
// aggregate, so the count is surfaced rather than swallowed.
func (a *SPATLAggregator) Dropped() int64 { return a.dropped.Load() }

// Broadcast implements Aggregator. The returned frame body is owned by
// the aggregator and reused next round (the server writes it out before
// the round's uploads return).
func (a *SPATLAggregator) Broadcast(round int) []byte {
	n := a.Global.StateLen(models.ScopeEncoder)
	state := a.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	enc := comm.EncodeDenseInto(comm.GetBuf(comm.DenseLen(n)), state)
	ctrl := comm.EncodeDenseInto(comm.GetBuf(comm.DenseLen(len(a.c))), a.c)
	a.bcast = JoinPayloadsInto(a.bcast, enc, ctrl)
	comm.PutBuf(ctrl)
	comm.PutBuf(enc)
	comm.PutF32(state)
	return a.bcast
}

// Collect implements Aggregator: decode into pooled buffers and defer
// the reduction to FinishRound, which replays arrival order.
func (a *SPATLAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		a.dropped.Add(1)
		return
	}
	dW := &comm.Sparse{Values: comm.GetF32(len(parts[0]) / 4)}
	if err := comm.DecodeSparseInto(dW, parts[0]); err != nil {
		a.dropped.Add(1)
		comm.PutSparse(dW)
		return
	}
	u := spatlUpload{dW: dW}
	dC := &comm.Sparse{Values: comm.GetF32(len(parts[1]) / 4)}
	if err := comm.DecodeSparseInto(dC, parts[1]); err == nil {
		u.dC = dC
	} else {
		a.dropped.Add(1)
		comm.PutSparse(dC)
	}
	a.pending = append(a.pending, u)
}

// FinishRound implements Aggregator: per-index averaged aggregation of
// the buffered salient deltas (eq. 12) plus the eq. 11 control update,
// chunked over the parameter dimension. Each index consumes clients in
// arrival order inside its chunk, so the result is bitwise identical to
// the serial ScatterAdd replay at any GOMAXPROCS.
func (a *SPATLAggregator) FinishRound(round int) {
	if len(a.pending) == 0 {
		return
	}
	n := a.Global.StateLen(models.ScopeEncoder)
	if len(a.count) != n {
		a.count = make([]int32, n)
	}
	state := a.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	sum := comm.GetF32(n)
	invN := float32(1.0 / float64(a.Clients))
	tensor.Parallel(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			sum[j] = 0
			a.count[j] = 0
		}
		for _, u := range a.pending {
			comm.ScatterAddRange(sum, a.count, u.dW, lo, hi)
		}
		for j := lo; j < hi; j++ {
			if a.count[j] > 0 {
				state[j] += sum[j] / float32(a.count[j])
			}
		}
		hiC := hi
		if hiC > len(a.c) {
			hiC = len(a.c)
		}
		if lo < hiC {
			for _, u := range a.pending {
				if u.dC == nil {
					continue
				}
				comm.ScatterAddScaledRange(a.c, u.dC, invN, lo, hiC)
			}
		}
	})
	a.Global.SetState(models.ScopeEncoder, state)
	comm.PutF32(sum)
	comm.PutF32(state)
	for _, u := range a.pending {
		comm.PutSparse(u.dW)
		if u.dC != nil {
			comm.PutSparse(u.dC)
		}
	}
	a.pending = a.pending[:0]
}

// Final implements Aggregator.
func (a *SPATLAggregator) Final() []byte {
	return JoinPayloads(comm.EncodeDense(a.Global.State(models.ScopeEncoder)))
}

// SPATLTrainer implements Trainer with SPATL's client side: encoder
// install, gradient-controlled local update through the private
// predictor, salient selection via the RL agent, sparse upload.
type SPATLTrainer struct {
	Client *fl.Client
	Opts   fl.LocalOpts
	Agent  *rl.Agent
	// FLOPsBudget for the selection agent (default 0.6).
	FLOPsBudget float64
	// FineTuneRounds of agent head adaptation at the start (default 2).
	FineTuneRounds int
	Seed           int64

	control []float32
	upBuf   []byte // reusable upload frame body
}

// NewSPATLTrainer builds a client-side SPATL participant.
func NewSPATLTrainer(spec models.Spec, train, val *data.Dataset, id int, opts fl.LocalOpts, agentCfg rl.AgentConfig, seed int64) *SPATLTrainer {
	m := models.Build(spec, seed)
	agentCfg.Seed += int64(id)
	t := &SPATLTrainer{
		Client:         &fl.Client{ID: id, Train: train, Val: val, Model: m},
		Opts:           opts,
		Agent:          rl.NewAgent(agentCfg),
		FLOPsBudget:    0.6,
		FineTuneRounds: 2,
		Seed:           seed,
	}
	t.control = make([]float32, nn.ParamCount(m.EncoderParams()))
	return t
}

// LocalUpdate implements Trainer. The returned upload body is owned by
// the trainer and reused next round (the client writes it to the wire
// before the next broadcast arrives).
func (t *SPATLTrainer) LocalUpdate(round int, payload []byte) []byte {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return JoinPayloads(nil, nil)
	}
	n := t.Client.Model.StateLen(models.ScopeEncoder)
	globalState, err1 := comm.DecodeDenseInto(comm.GetF32(n), parts[0])
	serverC, err2 := comm.DecodeDenseInto(comm.GetF32(len(t.control)), parts[1])
	if err1 != nil || err2 != nil {
		comm.PutF32(globalState)
		comm.PutF32(serverC)
		return JoinPayloads(nil, nil)
	}
	m := t.Client.Model
	m.SetState(models.ScopeEncoder, globalState)

	encP := m.EncoderParams()
	gBefore := nn.FlattenParams(encP)
	rng := rand.New(rand.NewSource(t.Seed*1013 + int64(round)*37 + int64(t.Client.ID)))
	opts := t.Opts
	opts.Params = m.Params()
	opts.Hook = func(params []*nn.Param) {
		off := 0
		for _, p := range encP {
			for j := range p.G.Data {
				p.G.Data[j] += serverC[off+j] - t.control[off+j]
			}
			off += p.W.Len()
		}
	}
	steps, _ := fl.LocalSGD(t.Client, opts, rng)

	// Control update (option II) over the encoder.
	localCtrl := nn.FlattenParams(encP)
	inv := 1.0 / (float64(steps) * fl.EffectiveLR(opts.LR, opts.Momentum))
	dC := comm.GetF32(len(localCtrl))
	for j := range localCtrl {
		newC := t.control[j] - serverC[j] + float32(float64(gBefore[j]-localCtrl[j])*inv)
		dC[j] = newC - t.control[j]
		t.control[j] = newC
	}
	comm.PutF32(serverC)

	// Salient selection.
	env := prune.NewEnv(m, t.Client.Val, t.FLOPsBudget)
	if round < t.FineTuneRounds {
		ppo := rl.NewPPO(t.Agent, true)
		rl.Train(ppo, env, 1, 2, rng)
	}
	sel := prune.Select(m, rl.BestAction(t.Agent, env))

	localState := m.StateInto(models.ScopeEncoder, comm.GetF32(n))
	dW := comm.GetF32(len(localState))
	for j := range localState {
		dW[j] = localState[j] - globalState[j]
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	ctrlRanges := clipRangesTo(sel.Ranges, len(dC))
	var sw, sc comm.Sparse
	comm.GatherSparseInto(&sw, dW, sel.Ranges)
	comm.GatherSparseInto(&sc, dC, ctrlRanges)
	bufW := comm.EncodeSparseInto(comm.GetBuf(sw.EncodedLen()), &sw)
	bufC := comm.EncodeSparseInto(comm.GetBuf(sc.EncodedLen()), &sc)
	t.upBuf = JoinPayloadsInto(t.upBuf, bufW, bufC)
	comm.PutBuf(bufC)
	comm.PutBuf(bufW)
	comm.PutSparse(&sw)
	comm.PutSparse(&sc)
	comm.PutF32(dW)
	comm.PutF32(dC)
	return t.upBuf
}

// Finish implements Trainer.
func (t *SPATLTrainer) Finish(payload []byte) {
	parts, err := SplitPayloads(payload)
	if err != nil || len(parts) < 1 {
		return
	}
	if state, err := comm.DecodeDense(parts[0]); err == nil {
		t.Client.Model.SetState(models.ScopeEncoder, state)
	}
}

// clipRangesTo restricts index ranges to [0, n) — the control vector is
// the trainable prefix of the encoder state vector.
func clipRangesTo(ranges []comm.Range, n int) []comm.Range {
	out := make([]comm.Range, 0, len(ranges))
	for _, r := range ranges {
		if int(r.Start) >= n {
			break
		}
		if int(r.Start+r.Len) > n {
			r.Len = uint32(n) - r.Start
		}
		if r.Len > 0 {
			out = append(out, r)
		}
	}
	return out
}
