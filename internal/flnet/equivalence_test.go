package flnet

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/hetero"
	"spatl/internal/models"
	"spatl/internal/rl"
	"spatl/internal/telemetry"
)

// TestCrossTransportEquivalence is the contract of the unified algorithm
// layer: for every algorithm, a federation simulated in-process
// (internal/fl) and one run over loopback TCP (this package) must
// produce bitwise-identical global models, meter identical uplink
// payload bytes, and — with timestamps zeroed — emit byte-identical
// round journals: same cores, same per-(round, client) seeds, same
// lifecycle event sequence, different transport.
func TestCrossTransportEquivalence(t *testing.T) {
	const (
		clients = 3
		rounds  = 2
		classes = 4
		seed    = 33
	)
	agentCfg := rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 6}
	spatlOpts := algo.SPATLOptions{AgentCfg: agentCfg}
	heteroOpts := hetero.Options{Clusters: 2, Widths: []float64{0.25, 0.5, 1.0}, ReassignEvery: 2}

	mlp := models.Spec{Arch: "mlp", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.5}
	resnet := models.Spec{Arch: "resnet20", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.25}

	cases := []struct {
		name string
		spec models.Spec
		alg  fl.Algorithm // simulation side
		// agg builds the TCP-side aggregator; tr the TCP-side trainers.
		agg func(global *models.SplitModel, cfg algo.Config) Aggregator
		tr  func(c *algo.Client, cfg algo.Config) Trainer
		// rounds overrides the default round count (0 = default). SSFL
		// needs three: agreement, the index-bearing sparse round, and a
		// values-only round — every wire phase must match bitwise.
		rounds int
	}{
		{
			name: "fedavg", spec: mlp, alg: &fl.FedAvg{},
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator { return algo.NewFedAvgAggregator(g, cfg) },
			tr:  func(c *algo.Client, cfg algo.Config) Trainer { return algo.NewFedAvgTrainer(c, cfg) },
		},
		{
			name: "fedprox", spec: mlp, alg: &fl.FedProx{},
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator { return algo.NewFedAvgAggregator(g, cfg) },
			tr:  func(c *algo.Client, cfg algo.Config) Trainer { return algo.NewFedProxTrainer(c, cfg) },
		},
		{
			name: "scaffold", spec: mlp, alg: &fl.SCAFFOLD{},
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator { return algo.NewSCAFFOLDAggregator(g, cfg) },
			tr:  func(c *algo.Client, cfg algo.Config) Trainer { return algo.NewSCAFFOLDTrainer(c, cfg) },
		},
		{
			name: "fednova", spec: mlp, alg: &fl.FedNova{},
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator { return algo.NewFedNovaAggregator(g, cfg) },
			tr:  func(c *algo.Client, cfg algo.Config) Trainer { return algo.NewFedNovaTrainer(c, cfg) },
		},
		{
			name: "spatl", spec: resnet, alg: core.New(core.Options{AgentCfg: agentCfg}),
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator {
				return algo.NewSPATLAggregator(g, spatlOpts, cfg)
			},
			tr: func(c *algo.Client, cfg algo.Config) Trainer {
				return algo.NewSPATLTrainer(c, spatlOpts, cfg)
			},
		},
		{
			name: "ssfl", spec: resnet, alg: &fl.SSFL{}, rounds: 3,
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator {
				return algo.NewSSFLAggregator(g, algo.SSFLOptions{}, cfg)
			},
			tr: func(c *algo.Client, cfg algo.Config) Trainer {
				return algo.NewSSFLTrainer(c, algo.SSFLOptions{}, cfg)
			},
		},
		{
			// Three rounds cross one reassignment boundary (ReassignEvery=2
			// commits after round 1), so the post-reassignment broadcast
			// must also match bitwise across transports.
			name: "hetero", spec: resnet, alg: &hetero.FL{Opts: heteroOpts}, rounds: 3,
			agg: func(g *models.SplitModel, cfg algo.Config) Aggregator {
				return hetero.NewAggregator(g, heteroOpts, cfg)
			},
			tr: func(c *algo.Client, cfg algo.Config) Trainer {
				return hetero.NewTrainer(c, heteroOpts, cfg)
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rounds := rounds
			if tc.rounds != 0 {
				rounds = tc.rounds
			}
			ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*60, 1, 2)
			parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
			cd := make([]fl.ClientData, clients)
			for i := range cd {
				cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
			}

			// In-process simulation, full participation.
			env := fl.NewEnv(tc.spec, fl.Config{
				NumClients: clients, SampleRatio: 1, LocalEpochs: 1,
				BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed,
			}, cd)
			var simJournal bytes.Buffer
			simTel := telemetry.New(&simJournal)
			simTel.Journal.SetZeroTime(true)
			env.EnableTelemetry(simTel)
			cfg := env.AlgoConfig()
			all := make([]int, clients)
			for i := range all {
				all[i] = i
			}
			tc.alg.Setup(env)
			for r := 0; r < rounds; r++ {
				tc.alg.Round(env, r, all)
			}

			// The identical federation over TCP: same global init, same
			// client init (mirrors fl.NewEnv), same hyperparameters.
			var tcpJournal bytes.Buffer
			tcpTel := telemetry.New(&tcpJournal)
			tcpTel.Journal.SetZeroTime(true)
			srv, err := NewServer(ServerConfig{
				Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: seed,
				Tel: tcpTel,
			})
			if err != nil {
				t.Fatal(err)
			}
			global := models.Build(tc.spec, seed)
			globalInit := global.State(models.ScopeAll)
			serverErr := make(chan error, 1)
			go func() { serverErr <- srv.Run(tc.agg(global, cfg)) }()

			var wg sync.WaitGroup
			errs := make([]error, clients)
			for i := 0; i < clients; i++ {
				m := models.Build(tc.spec, seed+int64(1000+i))
				m.SetState(models.ScopeAll, globalInit)
				trainer := tc.tr(&algo.Client{ID: i, Train: cd[i].Train, Val: cd[i].Val, Model: m}, cfg)
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = RunClient(srv.Addr(), uint32(i), cd[i].Train.Len(), trainer)
				}(i)
			}
			wg.Wait()
			if err := <-serverErr; err != nil {
				t.Fatalf("server: %v", err)
			}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("client %d: %v", i, err)
				}
			}

			simState := env.Global.State(models.ScopeAll)
			tcpState := global.State(models.ScopeAll)
			if len(simState) != len(tcpState) {
				t.Fatalf("state length %d vs %d", len(simState), len(tcpState))
			}
			for j := range simState {
				if math.Float32bits(simState[j]) != math.Float32bits(tcpState[j]) {
					t.Fatalf("global state[%d] differs bitwise: %x (sim) vs %x (tcp)",
						j, math.Float32bits(simState[j]), math.Float32bits(tcpState[j]))
				}
			}
			if up := env.Meter.Up(); up != srv.UpPayloadBytes {
				t.Fatalf("uplink payload bytes differ: %d (sim) vs %d (tcp)", up, srv.UpPayloadBytes)
			}

			// The two transports must have journaled the identical event
			// sequence — byte-for-byte, with timestamps zeroed.
			if err := simTel.Journal.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := tcpTel.Journal.Flush(); err != nil {
				t.Fatal(err)
			}
			if simTel.Journal.Events() == 0 {
				t.Fatal("sim journal is empty")
			}
			if !bytes.Equal(simJournal.Bytes(), tcpJournal.Bytes()) {
				t.Fatalf("journals diverge across transports:\nsim:\n%s\ntcp:\n%s",
					simJournal.Bytes(), tcpJournal.Bytes())
			}
		})
	}
}
