package flnet

import (
	"math/rand"
	"sync"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/rl"
)

// TestSPATLOverTCP runs the full SPATL algorithm — encoder-only sharing,
// gradient control, salient sparse uploads — across real loopback TCP
// connections, and verifies (a) learning above chance, (b) that the
// sparse uploads are smaller than a dense encoder would be. The
// algorithm is the shared internal/algo core, the same one the
// simulation drives.
func TestSPATLOverTCP(t *testing.T) {
	const (
		clients = 3
		rounds  = 3
		classes = 4
	)
	spec := models.Spec{Arch: "resnet20", Classes: classes, InC: 3, H: 8, W: 8, Width: 0.25}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*70, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))

	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	global := models.Build(spec, 5)
	opts := algo.SPATLOptions{AgentCfg: rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 6}}
	cfg := algo.Config{
		NumClients: clients, LocalEpochs: 1, BatchSize: 16,
		LR: 0.02, Momentum: 0.9, Seed: 20,
	}
	agg := algo.NewSPATLAggregator(global, opts, cfg)

	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()

	var wg sync.WaitGroup
	trainers := make([]*algo.SPATLTrainer, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		tr, va := ds.Subset(parts[i]).Split(0.8)
		trainers[i] = algo.NewSPATLTrainer(&algo.Client{
			ID: i, Train: tr, Val: va, Model: models.Build(spec, int64(20+i)),
		}, opts, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunClient(srv.Addr(), uint32(i), trainers[i].Client.Train.Len(), trainers[i])
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Learning: personalized models (global encoder + private predictor)
	// must beat chance on their own validation sets.
	var total float64
	for _, tr := range trainers {
		total += fl.EvalAccuracy(tr.Client.Model, tr.Client.Val, 32)
	}
	if avg := total / clients; avg < 0.35 {
		t.Fatalf("SPATL-over-TCP accuracy %.3f, want > 0.35 (chance 0.25)", avg)
	}

	// Sparsity: measured uplink (frame headers included) must undercut the
	// dense 2× (state + control) equivalent a SCAFFOLD-style exchange
	// would ship.
	denseTwoX := int64(rounds * clients * 2 * 4 * global.StateLen(models.ScopeEncoder))
	if srv.UpBytes >= denseTwoX {
		t.Fatalf("uplink %d not below dense 2x equivalent %d", srv.UpBytes, denseTwoX)
	}
}
