package data

import (
	"math"
	"math/rand"

	"spatl/internal/tensor"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }
func sqrt(x float64) float64   { return math.Sqrt(x) }
func log(x float64) float64    { return math.Log(x) }

// SynthCIFARConfig parameterizes the CIFAR-10 stand-in generator.
type SynthCIFARConfig struct {
	Classes int // default 10
	H, W    int // default 16×16
	// Noise is the per-pixel Gaussian noise σ added to each instance.
	// Larger values make the task harder. Default 0.35.
	Noise float64
	// Jitter is the amplitude of per-instance pattern perturbations
	// (phase shifts, scale). Default 0.4.
	Jitter float64
}

func (c SynthCIFARConfig) withDefaults() SynthCIFARConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.H == 0 {
		c.H = 16
	}
	if c.W == 0 {
		c.W = 16
	}
	if c.Noise == 0 {
		c.Noise = 0.35
	}
	if c.Jitter == 0 {
		c.Jitter = 0.4
	}
	return c
}

// cifarClass holds the fixed per-class prototype parameters.
type cifarClass struct {
	base          [3]float64 // per-channel mean color
	fx, fy, phase [3]float64 // per-channel sinusoid parameters
	blobX, blobY  float64    // blob center in [0,1]
	blobR         float64    // blob radius in [0.15,0.35]
	blobAmp       [3]float64 // blob per-channel amplitude
}

// SynthCIFAR generates n labelled examples of the CIFAR-10 stand-in.
// Class prototypes are derived deterministically from classSeed, and the
// instances from instanceSeed — so every client and the server agree on
// the task while drawing disjoint samples.
func SynthCIFAR(cfg SynthCIFARConfig, n int, classSeed, instanceSeed int64) *Dataset {
	cfg = cfg.withDefaults()
	protos := cifarPrototypes(cfg, classSeed)
	rng := rand.New(rand.NewSource(instanceSeed))
	ds := &Dataset{X: tensor.New(n, 3, cfg.H, cfg.W), Y: make([]int, n), Classes: cfg.Classes}
	stride := 3 * cfg.H * cfg.W
	for i := 0; i < n; i++ {
		y := rng.Intn(cfg.Classes)
		ds.Y[i] = y
		renderCIFAR(ds.X.Data[i*stride:(i+1)*stride], protos[y], cfg, rng)
	}
	return ds
}

// SynthCIFARBalanced generates exactly perClass examples of each class in
// shuffled order — used for held-out evaluation splits.
func SynthCIFARBalanced(cfg SynthCIFARConfig, perClass int, classSeed, instanceSeed int64) *Dataset {
	cfg = cfg.withDefaults()
	protos := cifarPrototypes(cfg, classSeed)
	rng := rand.New(rand.NewSource(instanceSeed))
	n := perClass * cfg.Classes
	ds := &Dataset{X: tensor.New(n, 3, cfg.H, cfg.W), Y: make([]int, n), Classes: cfg.Classes}
	order := rng.Perm(n)
	stride := 3 * cfg.H * cfg.W
	for j, slot := range order {
		y := j % cfg.Classes
		ds.Y[slot] = y
		renderCIFAR(ds.X.Data[slot*stride:(slot+1)*stride], protos[y], cfg, rng)
	}
	return ds
}

func cifarPrototypes(cfg SynthCIFARConfig, seed int64) []cifarClass {
	prng := rand.New(rand.NewSource(seed))
	protos := make([]cifarClass, cfg.Classes)
	for k := range protos {
		p := &protos[k]
		for c := 0; c < 3; c++ {
			p.base[c] = prng.Float64()*1.0 - 0.5
			p.fx[c] = 1 + prng.Float64()*3
			p.fy[c] = 1 + prng.Float64()*3
			p.phase[c] = prng.Float64() * 2 * math.Pi
			p.blobAmp[c] = prng.Float64()*1.6 - 0.8
		}
		p.blobX = 0.2 + prng.Float64()*0.6
		p.blobY = 0.2 + prng.Float64()*0.6
		p.blobR = 0.15 + prng.Float64()*0.2
	}
	return protos
}

// renderCIFAR writes one instance of class prototype p into out (3·H·W).
func renderCIFAR(out []float32, p cifarClass, cfg SynthCIFARConfig, rng *rand.Rand) {
	// Instance-level nuisance parameters.
	dphase := rng.NormFloat64() * cfg.Jitter
	scale := 1 + rng.NormFloat64()*cfg.Jitter*0.25
	dx := rng.NormFloat64() * cfg.Jitter * 0.15
	dy := rng.NormFloat64() * cfg.Jitter * 0.15
	for c := 0; c < 3; c++ {
		plane := out[c*cfg.H*cfg.W : (c+1)*cfg.H*cfg.W]
		for y := 0; y < cfg.H; y++ {
			fy := float64(y)/float64(cfg.H) + dy
			for x := 0; x < cfg.W; x++ {
				fx := float64(x)/float64(cfg.W) + dx
				v := p.base[c]
				v += 0.5 * scale * math.Sin(2*math.Pi*(p.fx[c]*fx+p.fy[c]*fy)+p.phase[c]+dphase)
				ddx, ddy := fx-p.blobX, fy-p.blobY
				v += p.blobAmp[c] * math.Exp(-(ddx*ddx+ddy*ddy)/(2*p.blobR*p.blobR))
				v += rng.NormFloat64() * cfg.Noise
				plane[y*cfg.W+x] = float32(v)
			}
		}
	}
}

// SynthFEMNISTConfig parameterizes the FEMNIST stand-in generator.
type SynthFEMNISTConfig struct {
	Classes int // default 62 (digits + upper + lower, as in LEAF)
	H, W    int // default 28×28
	Noise   float64
	// Writers is the number of distinct writer styles; each example is
	// attributed to a writer, and the LEAF-style partition groups
	// examples by writer. Default 50.
	Writers int
}

func (c SynthFEMNISTConfig) withDefaults() SynthFEMNISTConfig {
	if c.Classes == 0 {
		c.Classes = 62
	}
	if c.H == 0 {
		c.H = 28
	}
	if c.W == 0 {
		c.W = 28
	}
	if c.Noise == 0 {
		c.Noise = 0.2
	}
	if c.Writers == 0 {
		c.Writers = 50
	}
	return c
}

// glyph is a fixed per-class stroke skeleton: a polyline through anchor
// points in the unit square.
type glyph struct {
	pts [][2]float64
}

// writerStyle is the per-writer feature skew: slant, stroke thickness and
// translation — LEAF's natural heterogeneity, synthesized.
type writerStyle struct {
	slant     float64
	thickness float64
	offX      float64
	offY      float64
	contrast  float64
}

// FEMNISTSet bundles the generated dataset with each example's writer id
// so the LEAF partitioner can group by writer.
type FEMNISTSet struct {
	*Dataset
	Writer []int
}

// SynthFEMNIST generates n labelled handwritten-character-like examples
// across cfg.Writers writer styles.
func SynthFEMNIST(cfg SynthFEMNISTConfig, n int, classSeed, instanceSeed int64) *FEMNISTSet {
	cfg = cfg.withDefaults()
	prng := rand.New(rand.NewSource(classSeed))
	glyphs := make([]glyph, cfg.Classes)
	for k := range glyphs {
		np := 3 + prng.Intn(3)
		pts := make([][2]float64, np)
		for i := range pts {
			pts[i] = [2]float64{0.15 + prng.Float64()*0.7, 0.15 + prng.Float64()*0.7}
		}
		glyphs[k] = glyph{pts: pts}
	}
	styles := make([]writerStyle, cfg.Writers)
	for w := range styles {
		styles[w] = writerStyle{
			slant:     prng.NormFloat64() * 0.2,
			thickness: 0.05 + prng.Float64()*0.06,
			offX:      prng.NormFloat64() * 0.05,
			offY:      prng.NormFloat64() * 0.05,
			contrast:  0.7 + prng.Float64()*0.6,
		}
	}

	rng := rand.New(rand.NewSource(instanceSeed))
	set := &FEMNISTSet{
		Dataset: &Dataset{X: tensor.New(n, 1, cfg.H, cfg.W), Y: make([]int, n), Classes: cfg.Classes},
		Writer:  make([]int, n),
	}
	stride := cfg.H * cfg.W
	for i := 0; i < n; i++ {
		y := rng.Intn(cfg.Classes)
		w := rng.Intn(cfg.Writers)
		set.Y[i] = y
		set.Writer[i] = w
		renderGlyph(set.X.Data[i*stride:(i+1)*stride], glyphs[y], styles[w], cfg, rng)
	}
	return set
}

// renderGlyph rasterizes the class polyline under the writer's style:
// each pixel's intensity decays with distance to the nearest stroke
// segment, giving anti-aliased stroke-like images.
func renderGlyph(out []float32, g glyph, s writerStyle, cfg SynthFEMNISTConfig, rng *rand.Rand) {
	jx := rng.NormFloat64() * 0.03
	jy := rng.NormFloat64() * 0.03
	for y := 0; y < cfg.H; y++ {
		fy := float64(y) / float64(cfg.H)
		for x := 0; x < cfg.W; x++ {
			fx := float64(x) / float64(cfg.W)
			// Inverse writer transform: undo slant and offset.
			ux := fx - s.offX - jx - s.slant*(fy-0.5)
			uy := fy - s.offY - jy
			d := distToPolyline(ux, uy, g.pts)
			v := s.contrast * math.Exp(-d*d/(2*s.thickness*s.thickness))
			v += rng.NormFloat64() * cfg.Noise
			out[y*cfg.W+x] = float32(v)
		}
	}
}

// distToPolyline returns the distance from (x,y) to the nearest segment
// of the polyline.
func distToPolyline(x, y float64, pts [][2]float64) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(pts); i++ {
		d := distToSegment(x, y, pts[i], pts[i+1])
		if d < best {
			best = d
		}
	}
	return best
}

func distToSegment(x, y float64, a, b [2]float64) float64 {
	vx, vy := b[0]-a[0], b[1]-a[1]
	wx, wy := x-a[0], y-a[1]
	l2 := vx*vx + vy*vy
	t := 0.0
	if l2 > 0 {
		t = (wx*vx + wy*vy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx, dy := x-(a[0]+t*vx), y-(a[1]+t*vy)
	return math.Sqrt(dx*dx + dy*dy)
}

// ByWriterPartition groups example indices into numClients clients by
// assigning whole writers to clients round-robin — the LEAF federated
// setting where each client is one (or more) natural writers.
func ByWriterPartition(set *FEMNISTSet, numClients int, rng *rand.Rand) [][]int {
	writers := map[int][]int{}
	for i, w := range set.Writer {
		writers[w] = append(writers[w], i)
	}
	ids := make([]int, 0, len(writers))
	for w := range writers {
		ids = append(ids, w)
	}
	// Map iteration order is random; sort for determinism, then shuffle
	// with the caller's rng.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	parts := make([][]int, numClients)
	for i, w := range ids {
		c := i % numClients
		parts[c] = append(parts[c], writers[w]...)
	}
	return parts
}
