package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFakeCIFAR writes n records of the CIFAR-10 binary layout.
func writeFakeCIFAR(t *testing.T, path string, n int, seed int64) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blob := make([]byte, n*cifarRecord)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		l := rng.Intn(10)
		labels[i] = l
		blob[i*cifarRecord] = byte(l)
		for j := 1; j < cifarRecord; j++ {
			blob[i*cifarRecord+j] = byte(rng.Intn(256))
		}
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return labels
}

func TestLoadCIFAR10File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data_batch_1.bin")
	labels := writeFakeCIFAR(t, path, 7, 1)
	ds, err := LoadCIFAR10File(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 7 || ds.Classes != 10 {
		t.Fatalf("loaded %d examples, classes %d", ds.Len(), ds.Classes)
	}
	sh := ds.X.Shape()
	if sh[1] != 3 || sh[2] != 32 || sh[3] != 32 {
		t.Fatalf("shape %v", sh)
	}
	for i, l := range labels {
		if ds.Y[i] != l {
			t.Fatalf("label %d = %d, want %d", i, ds.Y[i], l)
		}
	}
	// Pixels normalized to [-1, 1].
	for _, v := range ds.X.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v outside [-1,1]", v)
		}
	}
}

func TestLoadCIFAR10DirConcatenates(t *testing.T) {
	dir := t.TempDir()
	writeFakeCIFAR(t, filepath.Join(dir, "data_batch_1.bin"), 4, 2)
	writeFakeCIFAR(t, filepath.Join(dir, "data_batch_2.bin"), 6, 3)
	writeFakeCIFAR(t, filepath.Join(dir, "test_batch.bin"), 3, 4)
	train, err := LoadCIFAR10Dir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 10 {
		t.Fatalf("train size %d, want 10", train.Len())
	}
	test, err := LoadCIFAR10Dir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if test.Len() != 3 {
		t.Fatalf("test size %d, want 3", test.Len())
	}
}

func TestLoadCIFAR10Rejects(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "data_batch_1.bin")
	if err := os.WriteFile(bad, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10File(bad); err == nil {
		t.Fatal("expected error for truncated file")
	}
	// Bad label.
	blob := make([]byte, cifarRecord)
	blob[0] = 99
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCIFAR10File(bad); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
	if _, err := LoadCIFAR10Dir(t.TempDir(), false); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

const leafSample = `{
	"users": ["writer_a", "writer_b"],
	"user_data": {
		"writer_a": {"x": [[%s]], "y": [3]},
		"writer_b": {"x": [[%s], [%s]], "y": [7, 61]}
	}
}`

func leafPixels() string {
	vals := make([]string, 784)
	for i := range vals {
		vals[i] = "0.5"
	}
	return strings.Join(vals, ",")
}

func TestLoadLEAFFEMNIST(t *testing.T) {
	px := leafPixels()
	doc := strings.ReplaceAll(leafSample, "%s", px)
	set, err := LoadLEAFFEMNIST(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("loaded %d examples, want 3", set.Len())
	}
	if set.Writer[0] != 0 || set.Writer[1] != 1 || set.Writer[2] != 1 {
		t.Fatalf("writer attribution %v", set.Writer)
	}
	if set.Y[0] != 3 || set.Y[2] != 61 {
		t.Fatalf("labels %v", set.Y)
	}
	if set.X.At(0, 0, 0, 0) != 0.5 {
		t.Fatal("pixel values wrong")
	}
}

func TestLoadLEAFFEMNISTRejects(t *testing.T) {
	if _, err := LoadLEAFFEMNIST(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
	if _, err := LoadLEAFFEMNIST(strings.NewReader(`{"users":["u"],"user_data":{}}`)); err == nil {
		t.Fatal("expected error for missing user data")
	}
	if _, err := LoadLEAFFEMNIST(strings.NewReader(`{"users":[],"user_data":{}}`)); err == nil {
		t.Fatal("expected error for empty shard")
	}
	// Wrong pixel count.
	bad := `{"users":["u"],"user_data":{"u":{"x":[[1,2,3]],"y":[0]}}}`
	if _, err := LoadLEAFFEMNIST(strings.NewReader(bad)); err == nil {
		t.Fatal("expected error for wrong pixel count")
	}
	// Label out of range.
	px := leafPixels()
	bad2 := `{"users":["u"],"user_data":{"u":{"x":[[` + px + `]],"y":[99]}}}`
	if _, err := LoadLEAFFEMNIST(strings.NewReader(bad2)); err == nil {
		t.Fatal("expected error for bad label")
	}
}

func TestLoadedCIFARWorksWithPartitioner(t *testing.T) {
	dir := t.TempDir()
	writeFakeCIFAR(t, filepath.Join(dir, "data_batch_1.bin"), 200, 5)
	ds, err := LoadCIFAR10Dir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	parts := DirichletPartition(ds.Y, ds.Classes, 4, 0.5, 5, rand.New(rand.NewSource(6)))
	seen := 0
	for _, p := range parts {
		seen += len(p)
	}
	if seen != ds.Len() {
		t.Fatalf("partition covers %d of %d", seen, ds.Len())
	}
}
