package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSynthCIFARShapesAndLabels(t *testing.T) {
	ds := SynthCIFAR(SynthCIFARConfig{}, 100, 1, 2)
	if ds.Len() != 100 {
		t.Fatalf("Len = %d", ds.Len())
	}
	sh := ds.X.Shape()
	if sh[0] != 100 || sh[1] != 3 || sh[2] != 16 || sh[3] != 16 {
		t.Fatalf("shape %v", sh)
	}
	for _, y := range ds.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestSynthCIFARDeterministic(t *testing.T) {
	a := SynthCIFAR(SynthCIFARConfig{}, 20, 1, 2)
	b := SynthCIFAR(SynthCIFARConfig{}, 20, 1, 2)
	if !a.X.Equal(b.X) {
		t.Fatal("same seeds must give identical data")
	}
	c := SynthCIFAR(SynthCIFARConfig{}, 20, 1, 3)
	if a.X.Equal(c.X) {
		t.Fatal("different instance seeds must differ")
	}
}

func TestSynthCIFARClassesAreSeparable(t *testing.T) {
	// Same-class pairs must be closer on average than cross-class pairs;
	// otherwise the task is pure noise and no FL experiment can learn.
	ds := SynthCIFAR(SynthCIFARConfig{Noise: 0.2}, 400, 5, 6)
	stride := ds.X.Len() / ds.Len()
	dist := func(i, j int) float64 {
		var s float64
		for k := 0; k < stride; k++ {
			d := float64(ds.X.Data[i*stride+k] - ds.X.Data[j*stride+k])
			s += d * d
		}
		return s
	}
	var same, cross float64
	var ns, nc int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if ds.Y[i] == ds.Y[j] {
				same += dist(i, j)
				ns++
			} else {
				cross += dist(i, j)
				nc++
			}
		}
	}
	if ns == 0 || nc == 0 {
		t.Skip("degenerate draw")
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Fatalf("same-class distance %v >= cross-class %v: classes not separable", same/float64(ns), cross/float64(nc))
	}
}

func TestSynthCIFARBalanced(t *testing.T) {
	ds := SynthCIFARBalanced(SynthCIFARConfig{}, 7, 1, 2)
	counts := ds.ClassCounts()
	for k, c := range counts {
		if c != 7 {
			t.Fatalf("class %d has %d examples, want 7", k, c)
		}
	}
}

func TestBatchAndSubset(t *testing.T) {
	ds := SynthCIFAR(SynthCIFARConfig{}, 10, 1, 2)
	x, y := ds.Batch([]int{3, 7})
	if x.Dim(0) != 2 || len(y) != 2 {
		t.Fatal("batch size wrong")
	}
	if y[0] != ds.Y[3] || y[1] != ds.Y[7] {
		t.Fatal("batch labels wrong")
	}
	sx, _ := ds.Sample(3)
	stride := sx.Len()
	for k := 0; k < stride; k++ {
		if x.Data[k] != sx.Data[k] {
			t.Fatal("batch content mismatch with Sample")
		}
	}
	sub := ds.Subset([]int{0, 1, 2})
	if sub.Len() != 3 {
		t.Fatal("subset size wrong")
	}
}

func TestSplitFractions(t *testing.T) {
	ds := SynthCIFAR(SynthCIFARConfig{}, 10, 1, 2)
	tr, va := ds.Split(0.8)
	if tr.Len() != 8 || va.Len() != 2 {
		t.Fatalf("split gave %d/%d", tr.Len(), va.Len())
	}
	// Extremes stay non-empty.
	tr, va = ds.Split(0.0)
	if tr.Len() < 1 || va.Len() < 1 {
		t.Fatal("split must keep both sides non-empty")
	}
	tr, va = ds.Split(1.0)
	if tr.Len() < 1 || va.Len() < 1 {
		t.Fatal("split must keep both sides non-empty")
	}
}

func TestBatchesCoverDatasetOnce(t *testing.T) {
	ds := SynthCIFAR(SynthCIFARConfig{}, 23, 1, 2)
	seen := make([]int, ds.Len())
	for _, b := range ds.Batches(rand.New(rand.NewSource(3)), 5) {
		if len(b) > 5 {
			t.Fatalf("batch size %d > 5", len(b))
		}
		for _, i := range b {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
}

// Property: DirichletPartition is an exact cover — every index appears in
// exactly one client.
func TestDirichletPartitionExactCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		classes := 2 + rng.Intn(8)
		clients := 2 + rng.Intn(8)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		parts := DirichletPartition(labels, classes, clients, 0.5, 1, rng)
		seen := make([]int, n)
		for _, p := range parts {
			for _, i := range p {
				seen[i]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletPartitionRespectsMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := make([]int, 1000)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	parts := DirichletPartition(labels, 10, 10, 0.5, 20, rng)
	for c, p := range parts {
		if len(p) < 20 {
			t.Fatalf("client %d has %d < 20 examples", c, len(p))
		}
	}
}

func TestDirichletSkewIncreasesWithSmallAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 5000)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	skew := func(alpha float64) float64 {
		parts := DirichletPartition(labels, 10, 10, alpha, 1, rand.New(rand.NewSource(3)))
		// Average per-client entropy of the label distribution; lower
		// entropy = more skew.
		var total float64
		for _, p := range parts {
			counts := make([]float64, 10)
			for _, i := range p {
				counts[labels[i]]++
			}
			var h float64
			for _, c := range counts {
				if c > 0 {
					q := c / float64(len(p))
					h -= q * math.Log(q)
				}
			}
			total += h
		}
		return total / 10
	}
	if skew(0.1) >= skew(100) {
		t.Fatalf("alpha=0.1 entropy %v should be below alpha=100 entropy %v", skew(0.1), skew(100))
	}
}

func TestSynthFEMNISTShapes(t *testing.T) {
	set := SynthFEMNIST(SynthFEMNISTConfig{}, 60, 1, 2)
	sh := set.X.Shape()
	if sh[0] != 60 || sh[1] != 1 || sh[2] != 28 || sh[3] != 28 {
		t.Fatalf("shape %v", sh)
	}
	if set.Classes != 62 {
		t.Fatalf("classes = %d", set.Classes)
	}
	for i := range set.Y {
		if set.Writer[i] < 0 || set.Writer[i] >= 50 {
			t.Fatalf("writer %d out of range", set.Writer[i])
		}
	}
}

func TestByWriterPartitionGroupsWriters(t *testing.T) {
	set := SynthFEMNIST(SynthFEMNISTConfig{Writers: 12}, 600, 1, 2)
	parts := ByWriterPartition(set, 4, rand.New(rand.NewSource(3)))
	// Exact cover.
	seen := make([]int, set.Len())
	for _, p := range parts {
		for _, i := range p {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appears %d times", i, c)
		}
	}
	// No writer split across clients.
	owner := map[int]int{}
	for c, p := range parts {
		for _, i := range p {
			w := set.Writer[i]
			if prev, ok := owner[w]; ok && prev != c {
				t.Fatalf("writer %d split across clients %d and %d", w, prev, c)
			}
			owner[w] = c
		}
	}
}

func TestGammaSamplePositiveAndMeanRoughlyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []float64{0.3, 0.5, 1, 2, 5} {
		var sum float64
		n := 4000
		for i := 0; i < n; i++ {
			g := gammaSample(rng, shape)
			if g < 0 {
				t.Fatalf("negative gamma sample for shape %v", shape)
			}
			sum += g
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape) > 0.25*shape+0.1 {
			t.Fatalf("gamma(%v) empirical mean %v too far from shape", shape, mean)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, alpha := range []float64{0.1, 0.5, 2} {
		p := dirichlet(rng, 7, alpha)
		var s float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative proportion")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("proportions sum to %v", s)
		}
	}
}

func TestShardPartitionCoversAndSkews(t *testing.T) {
	const n, classes, clients, perClient = 600, 10, 6, 2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	parts := ShardPartition(labels, clients, perClient, rand.New(rand.NewSource(7)))
	if len(parts) != clients {
		t.Fatalf("got %d parts, want %d", len(parts), clients)
	}
	seen := make([]bool, n)
	for _, p := range parts {
		for _, i := range p {
			if seen[i] {
				t.Fatalf("example %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("example %d unassigned", i)
		}
	}
	// Pathological skew: each shard spans at most 2 labels (it can
	// straddle one label boundary), so a client holds at most
	// 2·shardsPerClient distinct labels — far below the full 10.
	for c, p := range parts {
		labelSet := map[int]bool{}
		for _, i := range p {
			labelSet[labels[i]] = true
		}
		if len(labelSet) > 2*perClient {
			t.Fatalf("client %d sees %d labels, want <= %d", c, len(labelSet), 2*perClient)
		}
	}
}

func TestShardPartitionDeterministic(t *testing.T) {
	labels := make([]int, 300)
	for i := range labels {
		labels[i] = i % 5
	}
	a := ShardPartition(labels, 4, 2, rand.New(rand.NewSource(3)))
	b := ShardPartition(labels, 4, 2, rand.New(rand.NewSource(3)))
	for c := range a {
		if len(a[c]) != len(b[c]) {
			t.Fatalf("client %d sizes differ", c)
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("client %d index %d differs", c, i)
			}
		}
	}
}
