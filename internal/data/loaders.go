package data

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"spatl/internal/tensor"
)

// This file provides loaders for the real datasets the paper uses, for
// environments that have them on disk. The experiment harness defaults
// to the synthetic stand-ins (this repository must work fully offline),
// but the loaders make the pipeline directly usable with:
//
//   - CIFAR-10 in its standard binary layout (data_batch_*.bin /
//     test_batch.bin: 1 coarse label byte + 3072 pixel bytes per record,
//     CHW order, 10000 records per file);
//   - FEMNIST in LEAF's JSON shard format ({"users": [...],
//     "user_data": {user: {"x": [[784 floats]...], "y": [labels...]}}).

// cifarRecord is 1 label byte + 3×32×32 pixels.
const cifarRecord = 1 + 3*32*32

// LoadCIFAR10File parses one CIFAR-10 binary batch file.
func LoadCIFAR10File(path string) (*Dataset, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCIFAR10(blob, path)
}

func parseCIFAR10(blob []byte, name string) (*Dataset, error) {
	if len(blob) == 0 || len(blob)%cifarRecord != 0 {
		return nil, fmt.Errorf("data: %s: size %d is not a multiple of the %d-byte CIFAR-10 record", name, len(blob), cifarRecord)
	}
	n := len(blob) / cifarRecord
	ds := &Dataset{X: tensor.New(n, 3, 32, 32), Y: make([]int, n), Classes: 10}
	for i := 0; i < n; i++ {
		rec := blob[i*cifarRecord : (i+1)*cifarRecord]
		label := int(rec[0])
		if label > 9 {
			return nil, fmt.Errorf("data: %s: record %d has label %d > 9", name, i, label)
		}
		ds.Y[i] = label
		pix := rec[1:]
		base := i * 3 * 32 * 32
		for j, p := range pix {
			// Normalize to roughly zero-mean unit-range, as the synthetic
			// generator produces.
			ds.X.Data[base+j] = float32(p)/127.5 - 1
		}
	}
	return ds, nil
}

// LoadCIFAR10Dir loads and concatenates every data_batch_*.bin in dir
// (the canonical cifar-10-batches-bin layout). Pass test=true to load
// test_batch.bin instead.
func LoadCIFAR10Dir(dir string, test bool) (*Dataset, error) {
	pattern := filepath.Join(dir, "data_batch_*.bin")
	if test {
		pattern = filepath.Join(dir, "test_batch.bin")
	}
	files, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("data: no CIFAR-10 batch files match %s", pattern)
	}
	sort.Strings(files)
	var all *Dataset
	for _, f := range files {
		ds, err := LoadCIFAR10File(f)
		if err != nil {
			return nil, err
		}
		if all == nil {
			all = ds
			continue
		}
		all = concat(all, ds)
	}
	return all, nil
}

// concat merges two datasets with identical shapes.
func concat(a, b *Dataset) *Dataset {
	c, h, w := a.X.Dim(1), a.X.Dim(2), a.X.Dim(3)
	out := &Dataset{X: tensor.New(a.Len()+b.Len(), c, h, w), Y: make([]int, 0, a.Len()+b.Len()), Classes: a.Classes}
	copy(out.X.Data, a.X.Data)
	copy(out.X.Data[a.X.Len():], b.X.Data)
	out.Y = append(out.Y, a.Y...)
	out.Y = append(out.Y, b.Y...)
	return out
}

// leafShard mirrors LEAF's FEMNIST JSON schema.
type leafShard struct {
	Users    []string `json:"users"`
	UserData map[string]struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	} `json:"user_data"`
}

// LoadLEAFFEMNIST parses a LEAF FEMNIST JSON shard from r, returning the
// examples with their writer attribution (writer ids are assigned in the
// file's "users" order).
func LoadLEAFFEMNIST(r io.Reader) (*FEMNISTSet, error) {
	var shard leafShard
	dec := json.NewDecoder(r)
	if err := dec.Decode(&shard); err != nil {
		return nil, fmt.Errorf("data: LEAF JSON: %w", err)
	}
	total := 0
	for _, u := range shard.Users {
		ud, ok := shard.UserData[u]
		if !ok {
			return nil, fmt.Errorf("data: LEAF user %q missing from user_data", u)
		}
		if len(ud.X) != len(ud.Y) {
			return nil, fmt.Errorf("data: LEAF user %q has %d examples but %d labels", u, len(ud.X), len(ud.Y))
		}
		total += len(ud.Y)
	}
	if total == 0 {
		return nil, fmt.Errorf("data: LEAF shard contains no examples")
	}
	set := &FEMNISTSet{
		Dataset: &Dataset{X: tensor.New(total, 1, 28, 28), Y: make([]int, 0, total), Classes: 62},
		Writer:  make([]int, 0, total),
	}
	idx := 0
	for wi, u := range shard.Users {
		ud := shard.UserData[u]
		for e := range ud.Y {
			if len(ud.X[e]) != 28*28 {
				return nil, fmt.Errorf("data: LEAF user %q example %d has %d pixels, want 784", u, e, len(ud.X[e]))
			}
			if ud.Y[e] < 0 || ud.Y[e] >= 62 {
				return nil, fmt.Errorf("data: LEAF user %q example %d label %d out of [0,62)", u, e, ud.Y[e])
			}
			base := idx * 28 * 28
			for j, v := range ud.X[e] {
				set.X.Data[base+j] = float32(v)
			}
			set.Y = append(set.Y, ud.Y[e])
			set.Writer = append(set.Writer, wi)
			idx++
		}
	}
	return set, nil
}

// LoadLEAFFEMNISTFile parses a LEAF FEMNIST JSON shard file.
func LoadLEAFFEMNISTFile(path string) (*FEMNISTSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadLEAFFEMNIST(f)
}
