// Package data provides the synthetic datasets and non-IID partitioning
// schemes used throughout the reproduction. The environment is offline,
// so CIFAR-10 and FEMNIST are substituted by procedural generators
// ("SynthCIFAR", "SynthFEMNIST") that preserve the properties the
// federated-learning experiments depend on: a learnable but non-trivial
// multi-class task, label skew across clients via Dirichlet allocation
// (the Non-IID benchmark scheme the paper uses, α = 0.5), and per-writer
// feature skew for FEMNIST (the LEAF scheme). See DESIGN.md §1.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"spatl/internal/tensor"
)

// Dataset is a labelled image set in NCHW layout.
type Dataset struct {
	X *tensor.Tensor // (N, C, H, W)
	Y []int
	// Classes is the number of label categories.
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Sample copies example i into a fresh (1,C,H,W) tensor.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	c, h, w := d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	stride := c * h * w
	x := tensor.New(1, c, h, w)
	copy(x.Data, d.X.Data[i*stride:(i+1)*stride])
	return x, d.Y[i]
}

// Batch gathers the examples at idx into a fresh batch tensor and label
// slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.X.Dim(1), d.X.Dim(2), d.X.Dim(3)
	stride := c * h * w
	x := tensor.New(len(idx), c, h, w)
	y := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*stride:(bi+1)*stride], d.X.Data[i*stride:(i+1)*stride])
		y[bi] = d.Y[i]
	}
	return x, y
}

// Subset returns a dataset view containing copies of the examples at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	x, y := d.Batch(idx)
	return &Dataset{X: x, Y: y, Classes: d.Classes}
}

// Split divides the dataset into a training part with the first
// round(frac·N) examples and a validation part with the rest (callers
// shuffle beforehand if needed; the generators emit shuffled data).
func (d *Dataset) Split(frac float64) (train, val *Dataset) {
	n := d.Len()
	cut := int(float64(n) * frac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// ClassCounts tallies examples per label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Batches returns successive index slices of the given size covering a
// shuffled permutation of the dataset.
func (d *Dataset) Batches(rng *rand.Rand, batchSize int) [][]int {
	perm := rng.Perm(d.Len())
	var out [][]int
	for lo := 0; lo < len(perm); lo += batchSize {
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		out = append(out, perm[lo:hi])
	}
	return out
}

// DirichletPartition splits example indices across numClients clients
// with label proportions drawn from Dir(alpha) per class — the Non-IID
// benchmark scheme ("noniid-labeldir"). Smaller alpha means more skew.
// The sampler retries until every client holds at least minSize examples,
// exactly as the benchmark implementation does.
func DirichletPartition(labels []int, classes, numClients int, alpha float64, minSize int, rng *rand.Rand) [][]int {
	if numClients <= 0 {
		panic("data: numClients must be positive")
	}
	if minSize < 1 {
		minSize = 1
	}
	byClass := make([][]int, classes)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	for attempt := 0; ; attempt++ {
		parts := make([][]int, numClients)
		for _, idxs := range byClass {
			if len(idxs) == 0 {
				continue
			}
			shuffled := append([]int(nil), idxs...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			props := dirichlet(rng, numClients, alpha)
			// Convert proportions to cumulative cut points.
			lo := 0
			var cum float64
			for c := 0; c < numClients; c++ {
				cum += props[c]
				hi := int(cum * float64(len(shuffled)))
				if c == numClients-1 {
					hi = len(shuffled)
				}
				if hi > lo {
					parts[c] = append(parts[c], shuffled[lo:hi]...)
				}
				lo = hi
			}
		}
		ok := true
		for _, p := range parts {
			if len(p) < minSize {
				ok = false
				break
			}
		}
		if ok || attempt >= 200 {
			if !ok {
				panic(fmt.Sprintf("data: DirichletPartition could not satisfy minSize=%d after 200 attempts", minSize))
			}
			// Each client's list was assembled class by class; shuffle it
			// so downstream train/val splits see the client's full label
			// mix on both sides.
			for _, p := range parts {
				rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
			}
			return parts
		}
	}
}

// ShardPartition splits example indices across numClients clients by
// the pathological label-shard scheme of the original FedAvg paper
// ("noniid-#label"): examples are sorted by label, cut into
// numClients·shardsPerClient equal shards, and each client is dealt
// shardsPerClient shards at random. Small shardsPerClient means extreme
// skew — with 2 shards each client sees at most 2 labels.
func ShardPartition(labels []int, numClients, shardsPerClient int, rng *rand.Rand) [][]int {
	if numClients <= 0 {
		panic("data: numClients must be positive")
	}
	if shardsPerClient < 1 {
		shardsPerClient = 1
	}
	// Stable label-major order: sort indices by (label, index).
	order := make([]int, len(labels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if labels[order[a]] != labels[order[b]] {
			return labels[order[a]] < labels[order[b]]
		}
		return order[a] < order[b]
	})
	nShards := numClients * shardsPerClient
	if nShards > len(order) {
		panic(fmt.Sprintf("data: ShardPartition needs at least %d examples for %d shards, got %d",
			nShards, nShards, len(order)))
	}
	deal := rng.Perm(nShards)
	parts := make([][]int, numClients)
	for c := 0; c < numClients; c++ {
		for k := 0; k < shardsPerClient; k++ {
			sh := deal[c*shardsPerClient+k]
			lo := sh * len(order) / nShards
			hi := (sh + 1) * len(order) / nShards
			parts[c] = append(parts[c], order[lo:hi]...)
		}
		// Shuffle within the client so train/val splits see its full
		// label mix on both sides, as DirichletPartition does.
		p := parts[c]
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	return parts
}

// dirichlet samples a length-n probability vector from Dir(alpha,...,alpha)
// via normalized Gamma(alpha,1) draws (Marsaglia–Tsang).
func dirichlet(rng *rand.Rand, n int, alpha float64) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		g := gammaSample(rng, alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) using Marsaglia & Tsang's method,
// with the standard alpha<1 boost.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && log(u) < 0.5*x*x+d*(1-v+log(v)) {
			return d * v
		}
	}
}
