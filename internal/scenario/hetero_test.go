package scenario

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// heteroBase is the smallest runnable heterogeneous cell: 2 clusters
// over a 3-width client cycle on the micro ResNet.
func heteroBase() Spec {
	s := microBase()
	s.Algo = "hetero"
	s.Arch = "resnet20"
	s.Rounds = 2
	s.Params.Clusters = 2
	s.Params.WidthDist = []float64{0.25, 0.5, 1.0}
	s.Params.ReassignEvery = 1
	return s
}

// TestHeteroCellDeterministicAcrossTransports pins the ISSUE's
// acceptance cell: a 2-cluster, width-{0.25,0.5,1.0} federation runs
// over both the in-process driver and real loopback TCP, produces
// byte-identical zero-time journals across runs, and journals its
// cluster reassignments.
func TestHeteroCellDeterministicAcrossTransports(t *testing.T) {
	for _, tr := range []Transport{
		{Kind: TransportSim},
		{Kind: TransportTCP},
	} {
		tr := tr
		t.Run(tr.transportTag(), func(t *testing.T) {
			t.Parallel()
			spec := heteroBase()
			spec.Transport = tr
			var j1, j2 bytes.Buffer
			if err := RunCell(spec, &j1); err != nil {
				t.Fatal(err)
			}
			if err := RunCell(spec, &j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Fatalf("journals differ across identical runs:\n%s\nvs\n%s", j1.String(), j2.String())
			}
			for _, ev := range []string{"round_start", "client_upload", "cluster_assign", "eval"} {
				if !strings.Contains(j1.String(), ev) {
					t.Fatalf("journal missing %s events:\n%s", ev, j1.String())
				}
			}
		})
	}
}

// TestMatrixHeteroAxes: the clusters / width_dists axes expand into the
// cross-product and stamp the cell key, so two cells differing only in
// cluster count or width cycle never collide.
func TestMatrixHeteroAxes(t *testing.T) {
	m := Matrix{
		Base: heteroBase(),
		Axes: Axes{
			Clusters:   []int{1, 2},
			WidthDists: [][]float64{{1}, {0.25, 0.5, 1.0}},
		},
	}
	if n := m.CellCount(); n != 4 {
		t.Fatalf("CellCount = %d, want 4", n)
	}
	cells, err := m.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4", len(cells))
	}
	keys := map[string]bool{}
	for _, c := range cells {
		keys[c.Key()] = true
	}
	if len(keys) != 4 {
		t.Fatalf("cell keys collide: %v", keys)
	}
	want := heteroBase()
	want.Params.Clusters, want.Params.WidthDist = 2, []float64{0.25, 0.5, 1.0}
	key := want.dimsKey()
	if !strings.Contains(key, "k2") || !strings.Contains(key, "wd250-500-1000") {
		t.Fatalf("dimsKey misses hetero axes: %s", key)
	}
}

// TestMatrixRejectsBadHeteroCells: validation catches cluster counts
// over the population and out-of-range widths at expansion time.
func TestMatrixRejectsBadHeteroCells(t *testing.T) {
	over := heteroBase()
	over.Params.Clusters = over.Clients + 1
	if err := over.Validate(); err == nil {
		t.Fatal("clusters > clients must not validate")
	}
	wide := heteroBase()
	wide.Params.WidthDist = []float64{1.5}
	if err := wide.Validate(); err == nil {
		t.Fatal("width > 1 must not validate")
	}
}

// TestRunMatrixCacheSkipsUnchanged: a cached re-run serves every
// unchanged cell from its journal (byte-identical output, Cached set),
// and a spec change invalidates exactly the affected cells.
func TestRunMatrixCacheSkipsUnchanged(t *testing.T) {
	m := Matrix{
		Base: func() Spec { s := microBase(); s.Rounds = 2; return s }(),
		Axes: Axes{Algos: []string{"fedavg", "fedprox"}},
	}
	dir := t.TempDir()
	first, err := RunMatrix(m, RunOptions{OutDir: dir, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	journals := map[string][]byte{}
	for _, r := range first {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		if r.Cached {
			t.Fatalf("cell %s cached on a cold run", r.Key)
		}
		b, err := os.ReadFile(r.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		journals[r.Key] = b
	}
	second, err := RunMatrix(m, RunOptions{OutDir: dir, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range second {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		if !r.Cached {
			t.Fatalf("cell %s re-ran despite an unchanged spec", r.Key)
		}
		b, err := os.ReadFile(r.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, journals[r.Key]) {
			t.Fatalf("cell %s: cached journal mutated", r.Key)
		}
	}
	// A spec change (more rounds) must invalidate: the cell keys stay the
	// same, so the hash sidecar is what catches it.
	m.Base.Rounds = 3
	third, err := RunMatrix(m, RunOptions{OutDir: dir, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range third {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		if r.Cached {
			t.Fatalf("cell %s served stale cache after a spec change", r.Key)
		}
	}
}
