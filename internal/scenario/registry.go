package scenario

import (
	"fmt"
	"sort"
	"sync"

	"spatl/internal/algo"
	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/hetero"
	"spatl/internal/models"
	"spatl/internal/rl"
)

// Entry describes one registered federation algorithm: the simulation
// adapter for in-process transports, the transport-free aggregator /
// trainer cores for TCP nodes, and the hyperparameter merge. All three
// consume the same Params, so every front end (spatl-bench cells,
// experiment drivers, spatl-node flags) configures identical knobs —
// the registry is the single construction path the ISSUE's satellite
// asks for.
type Entry struct {
	Name    string
	Summary string

	// New builds the in-process simulation algorithm.
	New func(p Params) fl.Algorithm
	// NewAggregator / NewTrainer build the wire-level cores
	// (flnet.Aggregator / flnet.Trainer are aliases of these types).
	NewAggregator func(global *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator
	NewTrainer    func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer
	// Tune merges the per-algorithm hyperparameter overrides into the
	// shared training config (LR override, FedProx mu, ...). May be nil.
	Tune func(p Params, cfg *algo.Config)
}

// withDefaults fills the Params fields whose zero value is not the
// algorithm default. The SPATL agent geometry defaults to the paper's
// 16/32; FineTuneEpisodes to the harness's 2-episode batches.
func (p Params) withDefaults() Params {
	if p.AgentDim == 0 {
		p.AgentDim = 16
	}
	if p.AgentHidden == 0 {
		p.AgentHidden = 32
	}
	if p.FineTuneEpisodes == 0 {
		p.FineTuneEpisodes = 2
	}
	return p
}

// spatlOptions assembles the shared SPATL option struct; zero fields
// fall through to algo.SPATLOptions.WithDefaults.
func spatlOptions(p Params) algo.SPATLOptions {
	p = p.withDefaults()
	return algo.SPATLOptions{
		FLOPsBudget:      p.FLOPsBudget,
		AgentCfg:         rl.AgentConfig{Dim: p.AgentDim, HeadHidden: p.AgentHidden, Seed: p.Seed + 31},
		Pretrained:       p.Pretrained,
		FineTuneRounds:   p.FineTuneRounds,
		FineTuneEpisodes: p.FineTuneEpisodes,
	}
}

func ssflOptions(p Params) algo.SSFLOptions {
	return algo.SSFLOptions{KeepRatio: p.KeepRatio}
}

// heteroOptions assembles the heterogeneous-federation options; zero
// fields fall through to hetero.Options.WithDefaults.
func heteroOptions(p Params) hetero.Options {
	return hetero.Options{
		Clusters:      p.Clusters,
		Widths:        p.WidthDist,
		ReassignEvery: p.ReassignEvery,
	}
}

// tuneLR applies the per-algorithm learning-rate override.
func tuneLR(p Params, cfg *algo.Config) {
	if p.LR > 0 {
		cfg.LR = p.LR
	}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Entry{}
)

// Register adds (or replaces) an algorithm entry.
func Register(e Entry) {
	if e.Name == "" || e.New == nil {
		panic("scenario: Register needs Name and New")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[e.Name] = e
}

// Lookup resolves a registered algorithm by name.
func Lookup(name string) (Entry, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("scenario: unknown algorithm %q (have %v)", name, AlgoNames())
	}
	return e, nil
}

// AlgoNames returns the registered algorithm names, sorted. Callers must
// not hold registryMu (Lookup calls this only on the error path, where
// Go's RWMutex allows the nested RLock).
func AlgoNames() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewAlgorithm instantiates a registered algorithm for the in-process
// transports.
func NewAlgorithm(name string, p Params) (fl.Algorithm, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return e.New(p.withDefaults()), nil
}

// algoConfig projects the spec onto the transport-free training config
// with the registry's per-algorithm overrides applied — the one place
// hyperparameter merging happens for every transport.
func (s Spec) algoConfig() algo.Config {
	cfg := algo.Config{
		NumClients:    s.Clients,
		LocalEpochs:   s.LocalEpochs,
		BatchSize:     s.BatchSize,
		LR:            s.LR,
		Momentum:      s.Momentum,
		WeightDecay:   s.WeightDecay,
		HalfPrecision: s.HalfPrecision,
		Seed:          s.Seed,
	}
	if e, err := Lookup(s.Algo); err == nil && e.Tune != nil {
		e.Tune(s.Params, &cfg)
	}
	return cfg
}

func init() {
	Register(Entry{
		Name:    "fedavg",
		Summary: "weighted model averaging (McMahan et al.)",
		New:     func(p Params) fl.Algorithm { return &fl.FedAvg{} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewFedAvgAggregator(g, cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewFedAvgTrainer(c, cfg)
		},
		Tune: tuneLR,
	})
	Register(Entry{
		Name:    "fedprox",
		Summary: "FedAvg + proximal term restraining client drift (Li et al.)",
		New:     func(p Params) fl.Algorithm { return &fl.FedProx{} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewFedAvgAggregator(g, cfg) // proximal term is client-side
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewFedProxTrainer(c, cfg)
		},
		Tune: func(p Params, cfg *algo.Config) {
			tuneLR(p, cfg)
			if p.ProxMu > 0 {
				cfg.ProxMu = p.ProxMu
			}
		},
	})
	Register(Entry{
		Name:    "scaffold",
		Summary: "control-variate drift correction, 2x uplink (Karimireddy et al.)",
		New:     func(p Params) fl.Algorithm { return &fl.SCAFFOLD{} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewSCAFFOLDAggregator(g, cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewSCAFFOLDTrainer(c, cfg)
		},
		Tune: tuneLR,
	})
	Register(Entry{
		Name:    "fednova",
		Summary: "normalized averaging over heterogeneous local work (Wang et al.)",
		New:     func(p Params) fl.Algorithm { return &fl.FedNova{} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewFedNovaAggregator(g, cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewFedNovaTrainer(c, cfg)
		},
		Tune: tuneLR,
	})
	Register(Entry{
		Name:    "spatl",
		Summary: "salient parameter aggregation + transfer learning (the paper)",
		New: func(p Params) fl.Algorithm {
			o := spatlOptions(p)
			return core.New(core.Options{
				FLOPsBudget:      o.FLOPsBudget,
				AgentCfg:         o.AgentCfg,
				Pretrained:       o.Pretrained,
				FineTuneRounds:   o.FineTuneRounds,
				FineTuneEpisodes: o.FineTuneEpisodes,
			})
		},
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewSPATLAggregator(g, spatlOptions(p), cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewSPATLTrainer(c, spatlOptions(p), cfg)
		},
		Tune: tuneLR,
	})
	Register(Entry{
		Name:    "hetero",
		Summary: "clustered aggregation over width-heterogeneous clients",
		New:     func(p Params) fl.Algorithm { return &hetero.FL{Opts: heteroOptions(p)} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return hetero.NewAggregator(g, heteroOptions(p), cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return hetero.NewTrainer(c, heteroOptions(p), cfg)
		},
		Tune: tuneLR,
	})
	Register(Entry{
		Name:    "ssfl",
		Summary: "sparse-native mask-static training, values-only frames",
		New:     func(p Params) fl.Algorithm { return &fl.SSFL{Opts: ssflOptions(p)} },
		NewAggregator: func(g *models.SplitModel, p Params, cfg algo.Config) algo.Aggregator {
			return algo.NewSSFLAggregator(g, ssflOptions(p), cfg)
		},
		NewTrainer: func(c *algo.Client, p Params, cfg algo.Config) algo.Trainer {
			return algo.NewSSFLTrainer(c, ssflOptions(p), cfg)
		},
		Tune: tuneLR,
	})
}

// pretrainCache memoizes pre-trained SPATL selection agents so a matrix
// (or a multi-experiment driver run) pays for ResNet-56 pre-training
// once per distinct geometry.
var pretrainCache sync.Map

// PretrainAgentBlob pre-trains (and caches) a SPATL selection agent on
// the ResNet-56 pruning task for this spec's geometry — the paper's
// §V-A setup. Returns nil when the spec asks for no pre-training.
func PretrainAgentBlob(spec Spec) []float32 {
	spec = spec.WithDefaults()
	p := spec.Params.withDefaults()
	if p.PretrainRounds <= 0 {
		return nil
	}
	budget := p.FLOPsBudget
	if budget == 0 {
		budget = 0.6
	}
	key := fmt.Sprintf("%d-%d-%d-%g-%g-%d-%d-%g-%d-%d",
		spec.Classes, spec.H, spec.W, spec.Width, spec.Noise,
		p.AgentDim, p.AgentHidden, budget, p.PretrainRounds, spec.Seed)
	if v, ok := pretrainCache.Load(key); ok {
		return v.([]float32)
	}
	seed := spec.Seed
	ms := models.Spec{Arch: "resnet56", Classes: spec.Classes, InC: 3, H: spec.H, W: spec.W, Width: spec.Width}
	m := models.Build(ms, seed+21)
	val := data.SynthCIFAR(data.SynthCIFARConfig{Classes: spec.Classes, H: spec.H, W: spec.W, Noise: spec.Noise},
		40*spec.Classes, seed*3+101, seed+23)
	agentCfg := rl.AgentConfig{Dim: p.AgentDim, HeadHidden: p.AgentHidden, Seed: seed + 31}
	agent, _ := core.PretrainAgent(agentCfg, m, val, budget, p.PretrainRounds, 4, seed+25)
	blob := agent.Save()
	pretrainCache.Store(key, blob)
	return blob
}
