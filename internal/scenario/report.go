package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"spatl/internal/netsim"
	"spatl/internal/telemetry"
)

// CellStats is everything the comparison report needs, derived entirely
// from a cell's journal (plus its spec for thresholds and the time
// model) — the journal, not in-memory state, is the contract between
// running a cell and reporting on it.
type CellStats struct {
	Rounds int
	// FinalAcc / BestAcc come from the journal's eval events.
	FinalAcc float64
	BestAcc  float64
	// RoundsToTarget is the 1-based round whose eval first reached the
	// spec's TargetAcc, or -1 (never / no target set).
	RoundsToTarget int
	// UpBytes / DownBytes are the cumulative payload traffic at the last
	// round_end.
	UpBytes   int64
	DownBytes int64
	// Drops counts lost contributions; LateUploads quorum-folded
	// stragglers; Stragglers timed-out uploads.
	Drops       int
	LateUploads int
	Stragglers  int
	// SimSeconds is the netsim straggler-bound wall-clock estimate
	// (0 when the spec configures no Net).
	SimSeconds float64
}

// profileFor resolves the spec's Net into a link population. Custom
// fields override the named profile; a custom uplink without a downlink
// assumes the usual 4:1 asymmetry.
func profileFor(n Net) (netsim.Profile, bool) {
	var p netsim.Profile
	if n.Profile != "" {
		var ok bool
		if p, ok = netsim.ProfileByName(n.Profile); !ok {
			return p, false
		}
	}
	if n.UpMbps > 0 {
		p.MedianUpMbps = n.UpMbps
	}
	if n.DownMbps > 0 {
		p.MedianDownMbps = n.DownMbps
	}
	if n.Spread > 0 {
		p.Spread = n.Spread
	}
	if n.LatencyMs > 0 {
		p.LatencyMs = n.LatencyMs
	}
	if p.MedianDownMbps == 0 && p.MedianUpMbps > 0 {
		p.MedianDownMbps = 4 * p.MedianUpMbps
	}
	return p, p.MedianUpMbps > 0 && p.MedianDownMbps > 0
}

// StatsFromJournal replays a cell journal into CellStats. The time
// model samples the spec's link and compute populations from cell-seed
// offsets (+71, +73), then charges each round its straggler-bound time:
// every journaled participant (uploads and drops alike) pays download
// plus compute; uploaders pay their journaled upload bytes on top.
func StatsFromJournal(r io.Reader, spec Spec) (CellStats, error) {
	spec = spec.WithDefaults()
	st := CellStats{RoundsToTarget: -1}

	var links []netsim.Link
	var compute []float64
	if p, ok := profileFor(spec.Net); ok {
		links = netsim.SampleLinks(spec.Clients, p, spec.Seed+71)
		if spec.Net.ComputeSec > 0 {
			compute = netsim.SampleCompute(spec.Clients,
				netsim.ComputeProfile{MedianSec: spec.Net.ComputeSec, Spread: spec.Net.ComputeSpread},
				spec.Seed+73)
		}
	}

	var bcast int64
	var selected []int
	var upBytes []int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e telemetry.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return st, fmt.Errorf("scenario: bad journal line: %w", err)
		}
		switch e.Ev {
		case telemetry.EvRoundStart:
			bcast = e.Bytes
			selected, upBytes = selected[:0], upBytes[:0]
		case telemetry.EvClientUpload:
			if e.Client >= 0 && e.Client < spec.Clients {
				selected = append(selected, e.Client)
				upBytes = append(upBytes, e.Bytes)
			}
		case telemetry.EvLateUpload:
			st.LateUploads++
		case telemetry.EvStraggler:
			st.Stragglers++
		case telemetry.EvDrop:
			st.Drops++
			if e.Client >= 0 && e.Client < spec.Clients {
				// A crashed client still received the broadcast and
				// computed; its upload never lands (0 bytes).
				selected = append(selected, e.Client)
				upBytes = append(upBytes, 0)
			}
		case telemetry.EvRoundEnd:
			if e.Round+1 > st.Rounds {
				st.Rounds = e.Round + 1
			}
			st.UpBytes, st.DownBytes = e.Up, e.Down
			if links != nil && len(selected) > 0 {
				st.SimSeconds += netsim.RoundTimeVar(links, selected, bcast, upBytes, compute)
			}
		case telemetry.EvEval:
			st.FinalAcc = e.Acc
			if e.Acc > st.BestAcc {
				st.BestAcc = e.Acc
			}
			if spec.TargetAcc > 0 && st.RoundsToTarget < 0 && e.Acc >= spec.TargetAcc {
				st.RoundsToTarget = e.Round + 1
			}
		}
	}
	return st, sc.Err()
}

// StatsFromFile replays the journal at path.
func StatsFromFile(path string, spec Spec) (CellStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return CellStats{}, err
	}
	defer f.Close()
	return StatsFromJournal(f, spec)
}

// groupKey identifies a comparison group: everything in the cell
// identity except the algorithm — cells differing only by algorithm
// compete for the group's "winner" line.
func groupKey(s Spec) string {
	key := s.dimsKey()
	return strings.TrimPrefix(key, s.WithDefaults().Algo+"_")
}

func fmtRTT(r int) string {
	if r < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", r)
}

func fmtSec(s float64) string {
	if s == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fs", s)
}

// WriteReport renders the human comparison report: one row per cell,
// then per-group winners (best final accuracy among cells differing
// only by algorithm).
func WriteReport(w io.Writer, title string, results []CellResult) error {
	if title == "" {
		title = "scenario matrix"
	}
	fmt.Fprintf(w, "%s: %d cells\n\n", title, len(results))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\talgo\ttransport\tclients\tpart\tskew\tchurn\tfinal\tbest\tr->tgt\tup MB\tdown MB\tdrops\tlate\tsim time")
	for _, r := range results {
		s := r.Spec.WithDefaults()
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%s\t\t\t\t\tERROR: %v\n", r.Key, s.Algo, s.Transport.transportTag(), r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2f\t%s\t%.2f\t%.3f\t%.3f\t%s\t%.2f\t%.2f\t%d\t%d\t%s\n",
			r.Key, s.Algo, s.Transport.transportTag(), s.Clients, s.Participation,
			s.Partition.partTag(), s.Churn,
			r.Stats.FinalAcc, r.Stats.BestAcc, fmtRTT(r.Stats.RoundsToTarget),
			float64(r.Stats.UpBytes)/(1<<20), float64(r.Stats.DownBytes)/(1<<20),
			r.Stats.Drops, r.Stats.LateUploads, fmtSec(r.Stats.SimSeconds))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Winners: only meaningful where a group has >1 algorithm.
	groups := map[string][]CellResult{}
	for _, r := range results {
		if r.Err == nil {
			g := groupKey(r.Spec)
			groups[g] = append(groups[g], r)
		}
	}
	var names []string
	for g, rs := range groups {
		if len(rs) > 1 {
			names = append(names, g)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		fmt.Fprintf(w, "\nwinners (best final accuracy per setting):\n")
		for _, g := range names {
			best := groups[g][0]
			for _, r := range groups[g][1:] {
				if r.Stats.FinalAcc > best.Stats.FinalAcc {
					best = r
				}
			}
			fmt.Fprintf(w, "  %-40s %s (%.3f)\n", g, best.Spec.WithDefaults().Algo, best.Stats.FinalAcc)
		}
	}
	return nil
}

// WriteReportCSV renders the machine-readable report.
func WriteReportCSV(w io.Writer, results []CellResult) error {
	if _, err := fmt.Fprintln(w, "cell,algo,transport,clients,participation,partition,churn,seed,rounds,final_acc,best_acc,rounds_to_target,up_bytes,down_bytes,drops,late_uploads,sim_seconds,error"); err != nil {
		return err
	}
	for _, r := range results {
		s := r.Spec.WithDefaults()
		errStr := ""
		if r.Err != nil {
			errStr = strings.ReplaceAll(r.Err.Error(), ",", ";")
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%g,%s,%g,%d,%d,%.6f,%.6f,%d,%d,%d,%d,%d,%.3f,%s\n",
			r.Key, s.Algo, s.Transport.transportTag(), s.Clients, s.Participation,
			s.Partition.partTag(), s.Churn, s.Seed,
			r.Stats.Rounds, r.Stats.FinalAcc, r.Stats.BestAcc, r.Stats.RoundsToTarget,
			r.Stats.UpBytes, r.Stats.DownBytes, r.Stats.Drops, r.Stats.LateUploads,
			r.Stats.SimSeconds, errStr); err != nil {
			return err
		}
	}
	return nil
}
