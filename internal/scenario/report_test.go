package scenario

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatl/internal/telemetry"
)

// fakeJournal assembles a two-round journal with one drop, one late
// upload and two evals.
func fakeJournal(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	j.SetZeroTime(true)
	j.Emit(telemetry.RoundStart(0, 2, 100))
	j.Emit(telemetry.ClientUpload(0, 0, 50, 0))
	j.Emit(telemetry.Drop(0, 1))
	j.Emit(telemetry.RoundEnd(0, 50, 200))
	j.Emit(telemetry.Eval(0, 0.25))
	j.Emit(telemetry.RoundStart(1, 2, 100))
	j.Emit(telemetry.LateUpload(1, 1, 50))
	j.Emit(telemetry.ClientUpload(1, 0, 50, 0))
	j.Emit(telemetry.ClientUpload(1, 1, 50, 0))
	j.Emit(telemetry.RoundEnd(1, 200, 400))
	j.Emit(telemetry.Eval(1, 0.4))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStatsFromJournalCounts(t *testing.T) {
	spec := microBase()
	spec.Clients = 2
	spec.TargetAcc = 0.3
	st, err := StatsFromJournal(bytes.NewReader(fakeJournal(t)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.FinalAcc != 0.4 || st.BestAcc != 0.4 {
		t.Fatalf("acc final=%v best=%v", st.FinalAcc, st.BestAcc)
	}
	if st.RoundsToTarget != 2 {
		t.Fatalf("rounds-to-target = %d, want 2 (0.4 >= 0.3 at round 1)", st.RoundsToTarget)
	}
	if st.UpBytes != 200 || st.DownBytes != 400 {
		t.Fatalf("bytes up=%d down=%d", st.UpBytes, st.DownBytes)
	}
	if st.Drops != 1 || st.LateUploads != 1 {
		t.Fatalf("drops=%d late=%d", st.Drops, st.LateUploads)
	}
	if st.SimSeconds != 0 {
		t.Fatalf("no Net configured but SimSeconds = %v", st.SimSeconds)
	}
}

// TestStatsTimeModel: with a homogeneous custom link population the
// straggler-bound round time is exactly computable — drops pay download
// only, uploaders download + upload.
func TestStatsTimeModel(t *testing.T) {
	spec := microBase()
	spec.Clients = 2
	// 8 Mbps up, 32 Mbps down (4:1 default), zero spread and latency.
	spec.Net = Net{UpMbps: 8}
	st, err := StatsFromJournal(bytes.NewReader(fakeJournal(t)), spec)
	if err != nil {
		t.Fatal(err)
	}
	down := 100 * 8.0 / 32e6
	up := 50 * 8.0 / 8e6
	want := (down + up) + (down + up) // round 0 straggler = uploader; round 1 same
	if math.Abs(st.SimSeconds-want) > 1e-9 {
		t.Fatalf("SimSeconds = %v, want %v", st.SimSeconds, want)
	}
}

func TestRunMatrixEndToEndWithReport(t *testing.T) {
	m := Matrix{
		Name: "e2e",
		Base: func() Spec { s := microBase(); s.Rounds = 2; s.TargetAcc = 0.1; return s }(),
		Axes: Axes{
			Algos:  []string{"fedavg", "ssfl"},
			Alphas: []float64{0.5, 0.1},
		},
	}
	dir := t.TempDir()
	var log bytes.Buffer
	results, err := RunMatrix(m, RunOptions{OutDir: dir, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cells", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		if r.Stats.UpBytes <= 0 || r.Stats.Rounds != 2 {
			t.Fatalf("cell %s stats not populated: %+v", r.Key, r.Stats)
		}
		if _, err := os.Stat(r.JournalPath); err != nil {
			t.Fatalf("cell %s journal missing: %v", r.Key, err)
		}
	}
	if !strings.Contains(log.String(), "[4/4]") {
		t.Fatalf("progress log incomplete:\n%s", log.String())
	}

	rep, err := os.ReadFile(filepath.Join(dir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"e2e: 4 cells", "fedavg", "ssfl", "dir0.5", "dir0.1", "winners"} {
		if !strings.Contains(string(rep), want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}

	csv, err := os.ReadFile(filepath.Join(dir, "report.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("csv has %d lines, want 5:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "cell,algo,transport") {
		t.Fatalf("csv header wrong: %s", lines[0])
	}
}

// TestReportWinnersPickBestPerGroup: two algorithms in one setting →
// one winners line naming the higher-accuracy cell.
func TestReportWinnersPickBestPerGroup(t *testing.T) {
	a := microBase().WithDefaults()
	b := a
	b.Algo = "fedprox"
	results := []CellResult{
		{Spec: a, Key: a.Key(), Stats: CellStats{FinalAcc: 0.3}},
		{Spec: b, Key: b.Key(), Stats: CellStats{FinalAcc: 0.5}},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, "t", results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "winners") {
		t.Fatalf("no winners section:\n%s", out)
	}
	wi := strings.Index(out, "winners")
	if !strings.Contains(out[wi:], "fedprox (0.500)") {
		t.Fatalf("winner should be fedprox at 0.500:\n%s", out)
	}
}
