package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// DefaultCellCap bounds matrix expansion unless the caller forces past
// it — a cross-product typo (three ten-value axes) should fail fast,
// not train for a week.
const DefaultCellCap = 64

// Axes lists the values each swept dimension takes. Empty axes
// contribute the base spec's value. Alphas and ShardsPerClient are two
// faces of one partition axis: both non-empty means the partition axis
// is their concatenation (dirichlet cells then shard cells).
type Axes struct {
	// Algos sweeps the algorithm (registry names).
	Algos []string `json:"algos,omitempty"`
	// Participation sweeps the per-round sampling ratio.
	Participation []float64 `json:"participation,omitempty"`
	// Alphas sweeps Dirichlet label skew.
	Alphas []float64 `json:"alphas,omitempty"`
	// ShardsPerClient sweeps pathological shard skew.
	ShardsPerClient []int `json:"shards_per_client,omitempty"`
	// Clients sweeps the federation size.
	Clients []int `json:"clients,omitempty"`
	// Transports sweeps the wire path.
	Transports []Transport `json:"transports,omitempty"`
	// Churn sweeps the per-round client-crash probability.
	Churn []float64 `json:"churn,omitempty"`
	// Archs sweeps the model architecture.
	Archs []string `json:"archs,omitempty"`
	// Clusters sweeps hetero's cluster-model count.
	Clusters []int `json:"clusters,omitempty"`
	// WidthDists sweeps hetero's client width-multiplier cycle.
	WidthDists [][]float64 `json:"width_dists,omitempty"`
	// Seeds sweeps the base seed (per-cell seeds still derive from the
	// cell key, so two cells never share RNG streams).
	Seeds []int64 `json:"seeds,omitempty"`
}

// partitions materializes the partition axis.
func (a Axes) partitions(base Partition) []Partition {
	var out []Partition
	for _, alpha := range a.Alphas {
		p := base
		p.Kind, p.Alpha = PartDirichlet, alpha
		out = append(out, p)
	}
	for _, spc := range a.ShardsPerClient {
		p := base
		p.Kind, p.ShardsPerClient = PartShards, spc
		out = append(out, p)
	}
	if len(out) == 0 {
		out = []Partition{base}
	}
	return out
}

// Matrix is a cross-product of scenario cells: a base spec plus axis
// lists. Expansion derives each cell's seed from its key, so every cell
// is independently reproducible.
type Matrix struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	Base        Spec   `json:"base"`
	Axes        Axes   `json:"axes"`
	// CellCap overrides DefaultCellCap (0 keeps the default).
	CellCap int `json:"cell_cap,omitempty"`
}

// DecodeMatrix parses a matrix, rejecting unknown fields.
func DecodeMatrix(b []byte) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("scenario: bad matrix: %w", err)
	}
	if _, err := m.Expand(true); err != nil {
		return Matrix{}, err
	}
	return m, nil
}

func (m Matrix) cap() int {
	if m.CellCap > 0 {
		return m.CellCap
	}
	return DefaultCellCap
}

// orDefault returns vals, or the single fallback when empty.
func orDefault[T any](vals []T, fallback T) []T {
	if len(vals) == 0 {
		return []T{fallback}
	}
	return vals
}

// CellCount returns the expansion size without expanding.
func (m Matrix) CellCount() int {
	base := m.Base.WithDefaults()
	n := len(orDefault(m.Axes.Algos, "")) *
		len(orDefault(m.Axes.Archs, "")) *
		len(orDefault(m.Axes.Clients, 0)) *
		len(orDefault(m.Axes.Participation, 0)) *
		len(m.Axes.partitions(base.Partition)) *
		len(orDefault(m.Axes.Transports, Transport{})) *
		len(orDefault(m.Axes.Churn, 0)) *
		len(orDefault(m.Axes.Clusters, 0)) *
		len(orDefault(m.Axes.WidthDists, nil)) *
		len(orDefault(m.Axes.Seeds, 0))
	return n
}

// Expand materializes the cell cross-product in a fixed axis order
// (algo, arch, clients, participation, partition, transport, churn,
// seed), validating every cell and deriving its seed from the cell key.
// Unless force is set, expansion refuses to exceed the cell cap.
func (m Matrix) Expand(force bool) ([]Spec, error) {
	if n := m.CellCount(); n > m.cap() && !force {
		return nil, fmt.Errorf("scenario: matrix %q expands to %d cells, over the cap of %d (pass force / -force to run anyway)",
			m.Name, n, m.cap())
	}
	base := m.Base.WithDefaults()
	var cells []Spec
	seen := map[string]bool{}
	for _, alg := range orDefault(m.Axes.Algos, base.Algo) {
		for _, arch := range orDefault(m.Axes.Archs, base.Arch) {
			for _, nc := range orDefault(m.Axes.Clients, base.Clients) {
				for _, part := range orDefault(m.Axes.Participation, base.Participation) {
					for _, pt := range m.Axes.partitions(base.Partition) {
						for _, tr := range orDefault(m.Axes.Transports, base.Transport) {
							for _, churn := range orDefault(m.Axes.Churn, base.Churn) {
								for _, kc := range orDefault(m.Axes.Clusters, base.Params.Clusters) {
									for _, wd := range orDefault(m.Axes.WidthDists, base.Params.WidthDist) {
										for _, seed := range orDefault(m.Axes.Seeds, base.Seed) {
											cell := base
											cell.Name = ""
											cell.Algo = alg
											cell.Arch = arch
											cell.Clients = nc
											// Writers scales with the population unless
											// the base pinned it explicitly.
											if m.Base.Writers == 0 {
												cell.Writers = 3 * nc
											}
											cell.Participation = part
											cell.Partition = pt
											cell.Transport = tr
											cell.Churn = churn
											cell.Params.Clusters = kc
											cell.Params.WidthDist = wd
											cell = cell.WithDefaults()
											cell.Seed = DeriveSeed(seed, cell.dimsKey())
											if err := cell.Validate(); err != nil {
												return nil, fmt.Errorf("cell %s: %w", cell.dimsKey(), err)
											}
											if key := cell.Key(); seen[key] {
												return nil, fmt.Errorf("scenario: matrix %q produces duplicate cell %s (degenerate axes)", m.Name, key)
											} else {
												seen[key] = true
											}
											cells = append(cells, cell)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}
