package scenario

import "sort"

// microBase is the smallest runnable cell: an MLP on 8x8 synthetic
// CIFAR, seconds per cell — the base the bundled presets sweep around.
func microBase() Spec {
	return Spec{
		Algo: "fedavg", Arch: "mlp", Classes: 4, H: 8, W: 8,
		Clients: 4, PerClient: 60, Rounds: 3, LocalEpochs: 1,
		BatchSize: 16, TargetAcc: 0.3, Seed: 1,
	}
}

// Preset is a named, ready-to-run matrix.
type Preset struct {
	Name        string
	Description string
	Matrix      Matrix
}

var presets = map[string]Preset{
	"quick": {
		Name:        "quick",
		Description: "2 algos x 2 participation x 2 skews, in-process (8 cells)",
		Matrix: Matrix{
			Name: "quick",
			Base: microBase(),
			Axes: Axes{
				Algos:         []string{"fedavg", "fedprox"},
				Participation: []float64{1.0, 0.5},
				Alphas:        []float64{0.5, 0.1},
			},
		},
	},
	"transports": {
		Name:        "transports",
		Description: "fedavg across all four transports (4 cells)",
		Matrix: Matrix{
			Name: "transports",
			Base: microBase(),
			Axes: Axes{
				Transports: []Transport{
					{Kind: TransportSim},
					{Kind: TransportSharded, Shards: 2},
					{Kind: TransportQuorum, OnTimeFrac: 0.75},
					{Kind: TransportTCP},
				},
			},
		},
	},
	"churn": {
		Name:        "churn",
		Description: "fedavg vs ssfl under client churn, flat vs quorum (8 cells)",
		Matrix: Matrix{
			Name: "churn",
			Base: microBase(),
			Axes: Axes{
				Algos: []string{"fedavg", "ssfl"},
				Churn: []float64{0, 0.3},
				Transports: []Transport{
					{Kind: TransportSim},
					{Kind: TransportQuorum, OnTimeFrac: 0.5},
				},
			},
		},
	},
	"skew-net": {
		Name:        "skew-net",
		Description: "4 algos x 2 skews over a mobile fleet with compute heterogeneity (8 cells)",
		Matrix: Matrix{
			Name: "skew-net",
			Base: func() Spec {
				s := microBase()
				s.Net = Net{Profile: "mobile", ComputeSec: 2, ComputeSpread: 0.8}
				return s
			}(),
			Axes: Axes{
				Algos:  []string{"fedavg", "fedprox", "scaffold", "ssfl"},
				Alphas: []float64{0.5, 0.1},
			},
		},
	},
	"hetero": {
		Name:        "hetero",
		Description: "clustered hetero: 2 cluster counts x 2 width cycles, sim + tcp (8 cells)",
		Matrix: Matrix{
			Name: "hetero",
			Base: func() Spec {
				s := microBase()
				s.Algo = "hetero"
				s.Arch = "resnet20"
				s.Params.ReassignEvery = 1
				return s
			}(),
			Axes: Axes{
				Clusters:   []int{1, 2},
				WidthDists: [][]float64{{1}, {0.25, 0.5, 1.0}},
				Transports: []Transport{
					{Kind: TransportSim},
					{Kind: TransportTCP},
				},
			},
		},
	},
	"acceptance": {
		Name:        "acceptance",
		Description: "2 algos x 2 participation x 2 skews x 2 transports (16 cells)",
		Matrix: Matrix{
			Name: "acceptance",
			Base: microBase(),
			Axes: Axes{
				Algos:         []string{"fedavg", "fedprox"},
				Participation: []float64{1.0, 0.5},
				Alphas:        []float64{0.5, 0.1},
				Transports: []Transport{
					{Kind: TransportSim},
					{Kind: TransportTCP},
				},
			},
		},
	},
}

// Presets returns the bundled matrices, sorted by name.
func Presets() []Preset {
	var out []Preset
	for _, p := range presets {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PresetByName resolves a bundled matrix.
func PresetByName(name string) (Preset, bool) {
	p, ok := presets[name]
	return p, ok
}
