package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecDefaultsAreRunnable(t *testing.T) {
	s := Spec{}.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted zero spec invalid: %v", err)
	}
	if s.Algo != "fedavg" || s.Dataset != DataCIFAR || s.Transport.Kind != TransportSim {
		t.Fatalf("unexpected defaults: %+v", s)
	}
	f := Spec{Dataset: DataFEMNIST}.WithDefaults()
	if f.Arch != "cnn2" || f.Partition.Kind != PartWriter {
		t.Fatalf("femnist defaults wrong: arch=%s partition=%s", f.Arch, f.Partition.Kind)
	}
	if f.Writers != 3*f.Clients {
		t.Fatalf("writers default %d, want %d", f.Writers, 3*f.Clients)
	}
}

// TestSpecJSONRoundTrip: encode -> decode -> encode is byte-identical —
// the property the ISSUE's determinism satellite names for spec files.
func TestSpecJSONRoundTrip(t *testing.T) {
	s := microBase().WithDefaults()
	s.Net = Net{Profile: "mobile", ComputeSec: 2}
	b1, err := EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeSpec(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeJSON(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", b1, b2)
	}

	m := presets["acceptance"].Matrix
	mb1, err := EncodeJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeMatrix(mb1)
	if err != nil {
		t.Fatal(err)
	}
	mb2, err := EncodeJSON(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb1, mb2) {
		t.Fatal("matrix round trip not byte-identical")
	}
}

// TestDecodeSpecRejectsMalformed: the error sweep — unknown fields,
// unknown enums, out-of-range knobs, unsupported combinations.
func TestDecodeSpecRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"unknown field", `{"algo": "fedavg", "typo_field": 3}`, "typo_field"},
		{"unknown algo", `{"algo": "fedsgd"}`, "unknown algorithm"},
		{"unknown dataset", `{"algo": "fedavg", "dataset": "imagenet"}`, "unknown dataset"},
		{"unknown partition", `{"algo": "fedavg", "partition": {"kind": "iid"}}`, "unknown partition"},
		{"unknown transport", `{"algo": "fedavg", "transport": {"kind": "udp"}}`, "unknown transport"},
		{"participation over 1", `{"algo": "fedavg", "participation": 1.5}`, "participation"},
		{"negative churn", `{"algo": "fedavg", "churn": -0.5}`, "churn"},
		{"churn over tcp", `{"algo": "fedavg", "churn": 0.2, "transport": {"kind": "tcp"}}`, "churn"},
		{"writer partition on cifar", `{"algo": "fedavg", "partition": {"kind": "writer"}}`, "femnist"},
		{"dirichlet on femnist", `{"algo": "fedavg", "dataset": "femnist", "partition": {"kind": "dirichlet"}}`, "writer"},
		{"bad alpha", `{"algo": "fedavg", "partition": {"kind": "dirichlet", "alpha": -1}}`, "alpha"},
		{"bad quorum frac", `{"algo": "fedavg", "transport": {"kind": "quorum", "on_time_frac": 2}}`, "on_time_frac"},
		{"unknown net profile", `{"algo": "fedavg", "net": {"profile": "satellite"}}`, "profile"},
		{"not json", `{"algo":`, "bad spec"},
	}
	for _, tc := range cases {
		_, err := DecodeSpec([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeSpec([]byte(`{"algo": "fedavg"}`)); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
}

func TestCellKeyIsFilenameSafeAndDistinct(t *testing.T) {
	a := microBase().WithDefaults()
	b := a
	b.Participation = 0.5
	if a.Key() == b.Key() {
		t.Fatal("different cells share a key")
	}
	for _, k := range []string{a.Key(), b.Key()} {
		if strings.ContainsAny(k, "/\\ \t:*?\"<>|") {
			t.Fatalf("key %q is not filename-safe", k)
		}
	}
	// The key is stable — journal filenames and derived seeds depend on it.
	if got := a.Key(); got != "fedavg_cifar_mlp_c4_p1_dir0.5_sim_s1" {
		t.Fatalf("key changed: %s", got)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	s1 := DeriveSeed(1, "a")
	if s1 != DeriveSeed(1, "a") {
		t.Fatal("DeriveSeed not deterministic")
	}
	if s1 == DeriveSeed(1, "b") || s1 == DeriveSeed(2, "a") {
		t.Fatal("DeriveSeed collides across key/base changes")
	}
	if s1 <= 0 {
		t.Fatalf("seed %d not positive", s1)
	}
}
