package scenario

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"spatl/internal/fl"
	"spatl/internal/flnet"
	"spatl/internal/hetero"
	"spatl/internal/models"
	"spatl/internal/telemetry"
)

// RunOptions configures a matrix run.
type RunOptions struct {
	// OutDir receives one <cell-key>.jsonl journal per cell plus
	// report.txt and report.csv.
	OutDir string
	// Workers bounds concurrent cells (default min(4, GOMAXPROCS);
	// each cell itself trains its clients in parallel).
	Workers int
	// Force overrides the matrix cell cap.
	Force bool
	// Cache skips cells whose journal already exists in OutDir next to a
	// .hash sidecar matching the cell's SpecHash — a re-run after a
	// matrix edit only executes the changed cells. Stats still come from
	// the cached journal, so the report covers every cell either way.
	Cache bool
	// Log, when set, receives one progress line per finished cell and
	// the final report.
	Log io.Writer
}

// CellResult is one cell's outcome.
type CellResult struct {
	Spec        Spec
	Key         string
	JournalPath string
	Stats       CellStats
	Err         error
	// Cached marks a cell served from a prior run's journal.
	Cached bool
}

// RunCell executes one scenario cell, writing its zero-time journal to
// w. The journal is the cell's entire output: every run of the same
// spec produces byte-identical bytes here.
func RunCell(spec Spec, w io.Writer) error {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	tel := telemetry.New(w)
	tel.Journal.SetZeroTime(true)
	defer tel.Journal.Flush()
	spec.Params.Seed = spec.Seed
	if spec.Algo == "spatl" && spec.Params.Pretrained == nil {
		spec.Params.Pretrained = PretrainAgentBlob(spec)
	}
	if spec.Transport.Kind == TransportTCP {
		if err := runCellTCP(spec, tel); err != nil {
			return err
		}
	} else {
		env, err := BuildEnv(spec, tel)
		if err != nil {
			return err
		}
		alg, err := NewAlgorithm(spec.Algo, spec.Params)
		if err != nil {
			return err
		}
		// No early stop: every cell runs its full round budget so the
		// matrix report compares like with like.
		fl.Run(env, alg, fl.RunOpts{Rounds: spec.Rounds})
	}
	if err := tel.Journal.Flush(); err != nil {
		return err
	}
	return tel.Journal.Err()
}

// runCellTCP drives the cell over a real loopback TCP federation:
// flnet server plus one goroutine per client, the same wire path
// spatl-node deploys. Only the server side journals (client-side events
// would interleave nondeterministically); the final evaluation is
// emitted afterwards from this sequential code, so the journal stays
// byte-reproducible.
func runCellTCP(spec Spec, tel *telemetry.Set) error {
	entry, err := Lookup(spec.Algo)
	if err != nil {
		return err
	}
	env, err := BuildEnv(spec, nil)
	if err != nil {
		return err
	}
	acfg := spec.algoConfig()
	perRound := int(float64(spec.Clients)*spec.Participation + 0.5)
	if perRound < 1 {
		perRound = 1
	}
	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr: "127.0.0.1:0", Clients: spec.Clients, Rounds: spec.Rounds,
		PerRound: perRound, Seed: spec.Seed, Tel: tel,
	})
	if err != nil {
		return err
	}
	p := spec.Params.withDefaults()
	var wg sync.WaitGroup
	clientErrs := make([]error, len(env.Clients))
	for i, c := range env.Clients {
		tr := entry.NewTrainer(c, p, acfg)
		wg.Add(1)
		go func(i int, n int, tr flnet.Trainer) {
			defer wg.Done()
			clientErrs[i] = flnet.RunClientOpts(srv.Addr(), uint32(i), n, tr, flnet.ClientOptions{})
		}(i, c.Train.Len(), tr)
	}
	agg := entry.NewAggregator(env.Global, p, acfg)
	runErr := srv.Run(agg)
	wg.Wait()
	if runErr != nil {
		return fmt.Errorf("scenario: tcp cell server: %w", runErr)
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			return fmt.Errorf("scenario: tcp cell client %d: %w", i, cerr)
		}
	}
	// Final accuracy, measured exactly as the in-process runner does:
	// the aggregator mutated env.Global in place, so the global model is
	// the post-final-aggregate state. SPATL and SSFL share only the
	// encoder — compose it with each client's private predictor; a
	// hetero client deploys its cluster's model, not a single global one.
	var sum float64
	for _, c := range env.Clients {
		m := env.Global
		if spec.Algo == "spatl" || spec.Algo == "ssfl" {
			c.Model.SetState(models.ScopeEncoder, env.Global.State(models.ScopeEncoder))
			m = c.Model
		}
		if ha, ok := agg.(*hetero.Aggregator); ok {
			ha.InstallClientModel(c.ID, c.Model)
			m = c.Model
		}
		acc := fl.EvalAccuracy(m, c.Val, 64)
		if math.IsNaN(acc) {
			acc = 0
		}
		sum += acc
	}
	tel.Emit(telemetry.Eval(spec.Rounds-1, sum/float64(len(env.Clients))))
	return nil
}

// RunCellFile runs one cell, journaling to path.
func RunCellFile(spec Spec, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := RunCell(spec, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// JournalName returns the journal filename for a cell.
func JournalName(spec Spec) string { return spec.Key() + ".jsonl" }

// hashPath is the cache sidecar next to a cell's journal.
func hashPath(journalPath string) string {
	return journalPath[:len(journalPath)-len(".jsonl")] + ".hash"
}

// cacheFresh reports whether journalPath holds a result for exactly this
// spec: journal present and sidecar hash equal to SpecHash(spec).
func cacheFresh(journalPath string, spec Spec) bool {
	want := SpecHash(spec)
	if want == "" {
		return false
	}
	got, err := os.ReadFile(hashPath(journalPath))
	if err != nil || string(got) != want+"\n" {
		return false
	}
	if _, err := os.Stat(journalPath); err != nil {
		return false
	}
	return true
}

// RunMatrix expands the matrix and runs every cell over a bounded
// worker pool, writing one journal per cell into OutDir plus report.txt
// / report.csv rendered from those journals. Per-cell failures land in
// the corresponding CellResult.Err; the error return covers setup
// problems (expansion over the cap, unwritable OutDir).
func RunMatrix(m Matrix, opts RunOptions) ([]CellResult, error) {
	cells, err := m.Expand(opts.Force)
	if err != nil {
		return nil, err
	}
	if opts.OutDir == "" {
		return nil, fmt.Errorf("scenario: RunMatrix needs OutDir")
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	results := make([]CellResult, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes progress lines
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cell := cells[i]
				r := CellResult{Spec: cell, Key: cell.Key()}
				r.JournalPath = filepath.Join(opts.OutDir, JournalName(cell))
				if opts.Cache && cacheFresh(r.JournalPath, cell) {
					r.Cached = true
				} else {
					r.Err = RunCellFile(cell, r.JournalPath)
					if r.Err == nil && opts.Cache {
						r.Err = os.WriteFile(hashPath(r.JournalPath), []byte(SpecHash(cell)+"\n"), 0o644)
					}
				}
				if r.Err == nil {
					r.Stats, r.Err = StatsFromFile(r.JournalPath, cell)
				}
				results[i] = r
				if opts.Log != nil {
					mu.Lock()
					done++
					if r.Err != nil {
						fmt.Fprintf(opts.Log, "[%d/%d] %s: %v\n", done, len(cells), r.Key, r.Err)
					} else {
						tag := ""
						if r.Cached {
							tag = "  (cached)"
						}
						fmt.Fprintf(opts.Log, "[%d/%d] %s  acc %.3f  up %.2fMB%s\n",
							done, len(cells), r.Key, r.Stats.FinalAcc, float64(r.Stats.UpBytes)/(1<<20), tag)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep, err := os.Create(filepath.Join(opts.OutDir, "report.txt"))
	if err != nil {
		return results, err
	}
	if err := WriteReport(rep, m.Name, results); err != nil {
		rep.Close()
		return results, err
	}
	if err := rep.Close(); err != nil {
		return results, err
	}
	csv, err := os.Create(filepath.Join(opts.OutDir, "report.csv"))
	if err != nil {
		return results, err
	}
	if err := WriteReportCSV(csv, results); err != nil {
		csv.Close()
		return results, err
	}
	return results, csv.Close()
}
