package scenario

import (
	"strings"
	"testing"
)

func TestMatrixExpandCrossProduct(t *testing.T) {
	m := presets["acceptance"].Matrix
	want := 2 * 2 * 2 * 2
	if got := m.CellCount(); got != want {
		t.Fatalf("CellCount = %d, want %d", got, want)
	}
	cells, err := m.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	// Every cell validates, keys are unique, seeds are distinct and
	// derived from the key.
	keys := map[string]bool{}
	seeds := map[int64]bool{}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			t.Fatalf("cell %s invalid: %v", c.Key(), err)
		}
		if keys[c.Key()] {
			t.Fatalf("duplicate key %s", c.Key())
		}
		keys[c.Key()] = true
		seeds[c.Seed] = true
		if want := DeriveSeed(m.Base.WithDefaults().Seed, c.dimsKey()); c.Seed != want {
			t.Fatalf("cell %s seed %d, want derived %d", c.Key(), c.Seed, want)
		}
	}
	if len(seeds) != want {
		t.Fatalf("only %d distinct seeds across %d cells", len(seeds), want)
	}
	// Expansion order is fixed: algo is the outermost axis.
	if !strings.HasPrefix(cells[0].Key(), "fedavg_") || !strings.HasPrefix(cells[len(cells)-1].Key(), "fedprox_") {
		t.Fatalf("unexpected expansion order: %s ... %s", cells[0].Key(), cells[len(cells)-1].Key())
	}
}

func TestMatrixEmptyAxesUseBase(t *testing.T) {
	m := Matrix{Base: microBase()}
	cells, err := m.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("axis-free matrix expanded to %d cells, want 1", len(cells))
	}
	if cells[0].Algo != "fedavg" || cells[0].Partition.Kind != PartDirichlet {
		t.Fatalf("base not carried through: %+v", cells[0])
	}
}

// TestMatrixCellCapGuard: oversized matrices refuse to expand unless
// forced — the -matrix dry-run guard.
func TestMatrixCellCapGuard(t *testing.T) {
	m := Matrix{
		Base:    microBase(),
		CellCap: 4,
		Axes: Axes{
			Algos:  []string{"fedavg", "fedprox", "scaffold"},
			Alphas: []float64{0.1, 0.5},
		},
	}
	if _, err := m.Expand(false); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap expansion allowed (err=%v)", err)
	}
	cells, err := m.Expand(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("forced expansion gave %d cells, want 6", len(cells))
	}
}

func TestMatrixPartitionAxisCombinesSkews(t *testing.T) {
	m := Matrix{
		Base: microBase(),
		Axes: Axes{
			Alphas:          []float64{0.5},
			ShardsPerClient: []int{2},
		},
	}
	cells, err := m.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (one dirichlet + one shards)", len(cells))
	}
	if cells[0].Partition.Kind != PartDirichlet || cells[1].Partition.Kind != PartShards {
		t.Fatalf("partition kinds: %s, %s", cells[0].Partition.Kind, cells[1].Partition.Kind)
	}
}

func TestMatrixRejectsInvalidCells(t *testing.T) {
	m := Matrix{
		Base: microBase(),
		Axes: Axes{
			Churn:      []float64{0.2},
			Transports: []Transport{{Kind: TransportTCP}},
		},
	}
	if _, err := m.Expand(false); err == nil || !strings.Contains(err.Error(), "churn") {
		t.Fatalf("tcp+churn cell accepted (err=%v)", err)
	}
}

func TestMatrixClientsAxisRescalesWriters(t *testing.T) {
	base := microBase()
	base.Dataset = DataFEMNIST
	m := Matrix{Base: base, Axes: Axes{Clients: []int{2, 6}}}
	cells, err := m.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Writers != 3*c.Clients {
			t.Fatalf("cell %s writers %d, want %d", c.Key(), c.Writers, 3*c.Clients)
		}
	}
}

func TestPresetsAllExpand(t *testing.T) {
	if len(Presets()) < 4 {
		t.Fatalf("only %d presets bundled", len(Presets()))
	}
	for _, p := range Presets() {
		cells, err := p.Matrix.Expand(false)
		if err != nil {
			t.Fatalf("preset %s: %v", p.Name, err)
		}
		if len(cells) == 0 {
			t.Fatalf("preset %s expands to zero cells", p.Name)
		}
		if len(cells) != p.Matrix.CellCount() {
			t.Fatalf("preset %s: CellCount %d != expanded %d", p.Name, p.Matrix.CellCount(), len(cells))
		}
	}
	if _, ok := PresetByName("acceptance"); !ok {
		t.Fatal("acceptance preset missing")
	}
}
