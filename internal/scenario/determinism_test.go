package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCellDeterministicAcrossTransports: the load-bearing property —
// the same spec run twice produces byte-identical zero-time journals,
// on every transport the runner drives (including the real loopback-TCP
// federation).
func TestRunCellDeterministicAcrossTransports(t *testing.T) {
	for _, tr := range []Transport{
		{Kind: TransportSim},
		{Kind: TransportSharded, Shards: 2},
		{Kind: TransportQuorum, OnTimeFrac: 0.5},
		{Kind: TransportTCP},
	} {
		tr := tr
		t.Run(tr.transportTag(), func(t *testing.T) {
			t.Parallel()
			spec := microBase()
			spec.Transport = tr
			spec.Rounds = 2
			var j1, j2 bytes.Buffer
			if err := RunCell(spec, &j1); err != nil {
				t.Fatal(err)
			}
			if err := RunCell(spec, &j2); err != nil {
				t.Fatal(err)
			}
			if j1.Len() == 0 {
				t.Fatal("empty journal")
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Fatalf("journals differ across identical runs:\n%s\nvs\n%s", j1.String(), j2.String())
			}
			for _, ev := range []string{"round_start", "client_upload", "round_end", "eval"} {
				if !strings.Contains(j1.String(), ev) {
					t.Fatalf("journal missing %s events:\n%s", ev, j1.String())
				}
			}
		})
	}
}

// TestMatrixCellRerunsStandalone: a cell expanded from a matrix carries
// its derived seed, so running that single cell standalone reproduces
// the matrix's journal byte-for-byte — the ISSUE's re-run property.
func TestMatrixCellRerunsStandalone(t *testing.T) {
	m := Matrix{
		Base: func() Spec { s := microBase(); s.Rounds = 2; return s }(),
		Axes: Axes{Algos: []string{"fedavg", "fedprox"}},
	}
	dir := t.TempDir()
	results, err := RunMatrix(m, RunOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		fromMatrix, err := os.ReadFile(r.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip the cell through its canonical JSON first: the file
		// a user would save and re-run must carry everything.
		blob, err := EncodeJSON(r.Spec)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := DecodeSpec(blob)
		if err != nil {
			t.Fatal(err)
		}
		var standalone bytes.Buffer
		if err := RunCell(cell, &standalone); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromMatrix, standalone.Bytes()) {
			t.Fatalf("cell %s: standalone re-run differs from matrix journal", r.Key)
		}
	}
}

// TestRunMatrixTwiceIdentical: the whole matrix is reproducible — every
// journal and both reports byte-identical across runs.
func TestRunMatrixTwiceIdentical(t *testing.T) {
	m := Matrix{
		Base: func() Spec { s := microBase(); s.Rounds = 2; return s }(),
		Axes: Axes{
			Algos:  []string{"fedavg"},
			Alphas: []float64{0.5, 0.1},
		},
	}
	d1, d2 := t.TempDir(), t.TempDir()
	if _, err := RunMatrix(m, RunOptions{OutDir: d1, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunMatrix(m, RunOptions{OutDir: d2, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	names1, _ := filepath.Glob(filepath.Join(d1, "*"))
	if len(names1) != 4 { // 2 journals + report.txt + report.csv
		t.Fatalf("unexpected outputs: %v", names1)
	}
	for _, p1 := range names1 {
		b1, err := os.ReadFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, filepath.Base(p1)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s differs between identical matrix runs (worker count must not matter)", filepath.Base(p1))
		}
	}
}
