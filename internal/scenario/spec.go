// Package scenario is the declarative experiment layer: a JSON-loadable
// Spec describes one federation cell — algorithm and per-algorithm
// hyperparameters, dataset and partition skew, population and
// participation, transport topology, simulated network and compute
// heterogeneity — and a Matrix expands axis lists into the cell
// cross-product. The runner fans cells out over a bounded worker pool,
// emits one zero-time telemetry journal per cell, and renders a
// comparison report from the journals (never from in-memory state — the
// journal is the contract).
//
// The layering (DESIGN.md §13): scenario sits above internal/fl,
// internal/flnet, internal/netsim and internal/telemetry, and below
// internal/experiments — every paper driver builds its environments and
// algorithms through this package, so "the paper's table" and "a cell
// of the matrix" are the same code path.
//
// Determinism contract: every cell's seed is derived from its cell key,
// every transport the runner drives emits its journal from sequential
// code, and journals are written in zero-time mode — so the same spec
// run twice (or one cell re-run standalone from its recorded seed)
// produces byte-identical journals.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/hetero"
	"spatl/internal/models"
	"spatl/internal/telemetry"
)

// Dataset kinds.
const (
	DataCIFAR   = "cifar"   // SynthCIFAR, the Non-IID benchmark analog
	DataFEMNIST = "femnist" // SynthFEMNIST, the LEAF analog
)

// Partition kinds.
const (
	PartDirichlet = "dirichlet" // label proportions ~ Dir(alpha) per class
	PartShards    = "shards"    // pathological label shards (FedAvg paper)
	PartWriter    = "writer"    // whole writers per client (FEMNIST/LEAF)
)

// Transport kinds.
const (
	TransportSim     = "sim"     // in-process flat collection (fl.Sim)
	TransportSharded = "sharded" // in-process collection tree (fl.ShardedSim)
	TransportQuorum  = "quorum"  // in-process deterministic async quorum (fl.QuorumSim)
	TransportTCP     = "tcp"     // loopback TCP federation (flnet.Server)
)

// Partition selects the non-IID data split and its skew knob.
type Partition struct {
	// Kind is one of the Part* constants; "" defaults to dirichlet for
	// cifar and writer for femnist.
	Kind string `json:"kind,omitempty"`
	// Alpha is the Dirichlet concentration (dirichlet; default 0.5 —
	// the paper's setting; smaller = more skew).
	Alpha float64 `json:"alpha,omitempty"`
	// ShardsPerClient is the shards dealt per client (shards; default 2
	// — the FedAvg paper's pathological setting).
	ShardsPerClient int `json:"shards_per_client,omitempty"`
	// MinSize is the dirichlet resampling floor (default 10).
	MinSize int `json:"min_size,omitempty"`
}

// Transport selects how round payloads move between clients and the
// aggregator.
type Transport struct {
	// Kind is one of the Transport* constants; "" defaults to sim.
	Kind string `json:"kind,omitempty"`
	// Shards is the collection-tree width (sharded; default 2).
	Shards int `json:"shards,omitempty"`
	// OnTimeFrac is the fraction of uploads beating the quorum close
	// (quorum; default 0.75).
	OnTimeFrac float64 `json:"on_time_frac,omitempty"`
}

// Net parameterizes the simulated network and compute population the
// report's time model uses (netsim). The zero value disables the time
// model; it never affects the training run itself.
type Net struct {
	// Profile names a link population ("mobile", "broadband"); the
	// explicit fields below override it when non-zero.
	Profile   string  `json:"profile,omitempty"`
	UpMbps    float64 `json:"up_mbps,omitempty"`
	DownMbps  float64 `json:"down_mbps,omitempty"`
	Spread    float64 `json:"spread,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`

	// ComputeSec is the median per-round local-training time and
	// ComputeSpread its log-normal sigma — the compute-heterogeneity
	// axis. Zero ComputeSec drops the compute term.
	ComputeSec    float64 `json:"compute_sec,omitempty"`
	ComputeSpread float64 `json:"compute_spread,omitempty"`
}

// Enabled reports whether a time model is configured.
func (n Net) Enabled() bool { return n.Profile != "" || n.UpMbps > 0 }

// Params carries the per-algorithm hyperparameters routed through the
// algorithm registry — one bag shared by the in-process and TCP
// constructors, so spatl-bench cells and spatl-node flags configure the
// identical knobs. Zero fields take each algorithm's paper default.
type Params struct {
	// ProxMu is FedProx's proximal coefficient (default 0.01).
	ProxMu float64 `json:"prox_mu,omitempty"`
	// KeepRatio is SSFL's kept-channel fraction (default 0.5).
	KeepRatio float64 `json:"keep_ratio,omitempty"`
	// LR overrides the shared local learning rate for this algorithm
	// only — e.g. a SCAFFOLD-specific step size (0 keeps Spec.LR).
	LR float64 `json:"lr,omitempty"`
	// FLOPsBudget is SPATL's sub-network constraint (default 0.6).
	FLOPsBudget float64 `json:"flops_budget,omitempty"`
	// AgentDim / AgentHidden size SPATL's selection agent (defaults 16 / 32).
	AgentDim    int `json:"agent_dim,omitempty"`
	AgentHidden int `json:"agent_hidden,omitempty"`
	// PretrainRounds pre-trains SPATL's agent on the ResNet-56 pruning
	// task before the federation (0 skips pre-training).
	PretrainRounds int `json:"pretrain_rounds,omitempty"`
	// FineTuneRounds / FineTuneEpisodes drive SPATL's on-federation
	// agent fine-tuning (defaults 10 / 4).
	FineTuneRounds   int `json:"fine_tune_rounds,omitempty"`
	FineTuneEpisodes int `json:"fine_tune_episodes,omitempty"`

	// Clusters is hetero's cluster-model count (default 1).
	Clusters int `json:"clusters,omitempty"`
	// WidthDist is hetero's client width-multiplier cycle — client i
	// trains width WidthDist[i mod len] of the full model (default [1]).
	WidthDist []float64 `json:"width_dist,omitempty"`
	// ReassignEvery is hetero's cluster-reassignment period in rounds
	// (default 5; negative disables reassignment).
	ReassignEvery int `json:"reassign_every,omitempty"`

	// Pretrained injects pre-trained agent weights at runtime (the
	// experiments cache); never serialized.
	Pretrained []float32 `json:"-"`
	// Seed is the runtime seed the agent RNGs derive from; the runner
	// fills it from the cell seed.
	Seed int64 `json:"-"`
}

// Spec describes one federation cell. The zero value is not runnable;
// WithDefaults fills every unset field with a tiny-scale default, so a
// minimal JSON spec ({"algo": "fedavg"}) is complete.
type Spec struct {
	// Name labels the cell in reports; "" derives it from Key().
	Name string `json:"name,omitempty"`

	// Algo names a registered algorithm (see AlgoNames).
	Algo string `json:"algo"`
	// Params are the per-algorithm hyperparameters.
	Params Params `json:"params"`

	// Dataset is cifar (default) or femnist.
	Dataset string `json:"dataset,omitempty"`
	// Arch is the model architecture (default resnet20; femnist forces
	// cnn2).
	Arch    string  `json:"arch,omitempty"`
	Classes int     `json:"classes,omitempty"`
	H       int     `json:"h,omitempty"`
	W       int     `json:"w,omitempty"`
	Width   float64 `json:"width,omitempty"`
	Noise   float64 `json:"noise,omitempty"`

	// Clients is the federation size; Participation the per-round
	// sampling ratio in (0, 1].
	Clients       int     `json:"clients,omitempty"`
	Participation float64 `json:"participation,omitempty"`
	// PerClient is examples per client; Writers the femnist writer count
	// (default 3·Clients).
	PerClient int `json:"per_client,omitempty"`
	Writers   int `json:"writers,omitempty"`

	Rounds      int     `json:"rounds,omitempty"`
	LocalEpochs int     `json:"local_epochs,omitempty"`
	BatchSize   int     `json:"batch_size,omitempty"`
	LR          float64 `json:"lr,omitempty"`
	Momentum    float64 `json:"momentum,omitempty"`
	WeightDecay float64 `json:"weight_decay,omitempty"`
	// TargetAcc is the report's rounds-to-target threshold; it never
	// stops a cell early (cells always run their full Rounds so every
	// cell of a matrix is comparable).
	TargetAcc float64 `json:"target_acc,omitempty"`

	// Churn is the per-round probability a selected client crashes
	// after download and never uploads (deterministic injection;
	// journaled as drop events). Unsupported on the tcp transport.
	Churn float64 `json:"churn,omitempty"`
	// HalfPrecision ships payloads as binary16.
	HalfPrecision bool `json:"half_precision,omitempty"`

	Partition Partition `json:"partition"`
	Transport Transport `json:"transport"`
	Net       Net       `json:"net"`

	// Seed drives everything; a matrix cell's Seed is derived from the
	// cell key (DeriveSeed), recorded here so the cell re-runs
	// standalone byte-identically.
	Seed int64 `json:"seed,omitempty"`
}

// WithDefaults fills unset fields with tiny-scale defaults and
// normalizes kind strings.
func (s Spec) WithDefaults() Spec {
	if s.Algo == "" {
		s.Algo = "fedavg"
	}
	if s.Dataset == "" {
		s.Dataset = DataCIFAR
	}
	if s.Dataset == DataFEMNIST {
		s.Arch = "cnn2"
	} else if s.Arch == "" {
		s.Arch = "resnet20"
	}
	if s.Classes == 0 {
		s.Classes = 6
	}
	if s.H == 0 {
		s.H = 16
	}
	if s.W == 0 {
		s.W = 16
	}
	if s.Width == 0 {
		s.Width = 0.25
	}
	if s.Noise == 0 {
		s.Noise = 0.3
	}
	if s.Clients == 0 {
		s.Clients = 4
	}
	if s.Participation == 0 {
		s.Participation = 1
	}
	if s.PerClient == 0 {
		s.PerClient = 90
	}
	if s.Writers == 0 {
		s.Writers = 3 * s.Clients
	}
	if s.Rounds == 0 {
		s.Rounds = 5
	}
	if s.LocalEpochs == 0 {
		s.LocalEpochs = 2
	}
	if s.BatchSize == 0 {
		s.BatchSize = 16
	}
	if s.LR == 0 {
		s.LR = 0.02
	}
	if s.Momentum == 0 {
		s.Momentum = 0.9
	}
	if s.Partition.Kind == "" {
		if s.Dataset == DataFEMNIST {
			s.Partition.Kind = PartWriter
		} else {
			s.Partition.Kind = PartDirichlet
		}
	}
	if s.Partition.Alpha == 0 {
		s.Partition.Alpha = 0.5
	}
	if s.Partition.ShardsPerClient == 0 {
		s.Partition.ShardsPerClient = 2
	}
	if s.Partition.MinSize == 0 {
		s.Partition.MinSize = 10
	}
	if s.Transport.Kind == "" {
		s.Transport.Kind = TransportSim
	}
	if s.Transport.Shards == 0 {
		s.Transport.Shards = 2
	}
	if s.Transport.OnTimeFrac == 0 {
		s.Transport.OnTimeFrac = 0.75
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate reports the first structural problem with the spec. It is
// called on the defaulted form (WithDefaults is applied first).
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if _, err := Lookup(s.Algo); err != nil {
		return err
	}
	switch s.Dataset {
	case DataCIFAR, DataFEMNIST:
	default:
		return fmt.Errorf("scenario: unknown dataset %q (cifar|femnist)", s.Dataset)
	}
	switch s.Partition.Kind {
	case PartDirichlet, PartShards:
		if s.Dataset == DataFEMNIST {
			return fmt.Errorf("scenario: partition %q requires the cifar dataset (femnist partitions by writer)", s.Partition.Kind)
		}
	case PartWriter:
		if s.Dataset != DataFEMNIST {
			return fmt.Errorf("scenario: partition %q requires the femnist dataset", PartWriter)
		}
	default:
		return fmt.Errorf("scenario: unknown partition kind %q (dirichlet|shards|writer)", s.Partition.Kind)
	}
	switch s.Transport.Kind {
	case TransportSim, TransportSharded, TransportQuorum:
	case TransportTCP:
		if s.Churn > 0 {
			return fmt.Errorf("scenario: churn injection is not supported on the tcp transport (drops there come from real timeouts)")
		}
	default:
		return fmt.Errorf("scenario: unknown transport kind %q (sim|sharded|quorum|tcp)", s.Transport.Kind)
	}
	if s.Clients < 1 {
		return fmt.Errorf("scenario: clients must be >= 1, got %d", s.Clients)
	}
	if s.Participation <= 0 || s.Participation > 1 {
		return fmt.Errorf("scenario: participation must be in (0, 1], got %v", s.Participation)
	}
	if s.Churn < 0 || s.Churn >= 1 {
		return fmt.Errorf("scenario: churn must be in [0, 1), got %v", s.Churn)
	}
	if s.Rounds < 1 {
		return fmt.Errorf("scenario: rounds must be >= 1, got %d", s.Rounds)
	}
	if s.Partition.Kind == PartDirichlet && s.Partition.Alpha <= 0 {
		return fmt.Errorf("scenario: dirichlet alpha must be > 0, got %v", s.Partition.Alpha)
	}
	if s.Partition.Kind == PartShards && s.Clients*s.Partition.ShardsPerClient > s.Clients*s.PerClient {
		return fmt.Errorf("scenario: shards partition needs >= %d examples, population has %d",
			s.Clients*s.Partition.ShardsPerClient, s.Clients*s.PerClient)
	}
	if s.Transport.Kind == TransportQuorum && (s.Transport.OnTimeFrac <= 0 || s.Transport.OnTimeFrac > 1) {
		return fmt.Errorf("scenario: quorum on_time_frac must be in (0, 1], got %v", s.Transport.OnTimeFrac)
	}
	if s.Net.Profile != "" {
		if _, ok := profileFor(s.Net); !ok {
			return fmt.Errorf("scenario: unknown net profile %q (mobile|broadband)", s.Net.Profile)
		}
	}
	if s.Params.Clusters < 0 || s.Params.Clusters > 255 {
		return fmt.Errorf("scenario: clusters must be in [1, 255], got %d", s.Params.Clusters)
	}
	if s.Params.Clusters > s.Clients {
		return fmt.Errorf("scenario: %d clusters over %d clients (need clusters <= clients)",
			s.Params.Clusters, s.Clients)
	}
	for _, w := range s.Params.WidthDist {
		if w <= 0 || w > 1 {
			return fmt.Errorf("scenario: width_dist entries must be in (0, 1], got %v", w)
		}
	}
	return nil
}

// partTag is the partition's compact key fragment.
func (p Partition) partTag() string {
	switch p.Kind {
	case PartShards:
		return fmt.Sprintf("sh%d", p.ShardsPerClient)
	case PartWriter:
		return "writer"
	default:
		return fmt.Sprintf("dir%g", p.Alpha)
	}
}

// transportTag is the transport's compact key fragment.
func (t Transport) transportTag() string {
	switch t.Kind {
	case TransportSharded:
		return fmt.Sprintf("tree%d", t.Shards)
	case TransportQuorum:
		return fmt.Sprintf("q%g", t.OnTimeFrac)
	case TransportTCP:
		return "tcp"
	default:
		return "sim"
	}
}

// dimsKey is the cell identity without the seed — the string a matrix
// cell's seed is derived from.
func (s Spec) dimsKey() string {
	s = s.WithDefaults()
	parts := []string{
		s.Algo, s.Dataset, s.Arch,
		fmt.Sprintf("c%d", s.Clients),
		fmt.Sprintf("p%g", s.Participation),
		s.Partition.partTag(),
		s.Transport.transportTag(),
	}
	if s.Churn > 0 {
		parts = append(parts, fmt.Sprintf("ch%g", s.Churn))
	}
	if s.Params.Clusters > 0 {
		parts = append(parts, fmt.Sprintf("k%d", s.Params.Clusters))
	}
	if len(s.Params.WidthDist) > 0 {
		tags := make([]string, len(s.Params.WidthDist))
		for i, w := range s.Params.WidthDist {
			tags[i] = fmt.Sprintf("%d", hetero.WidthMilli(w))
		}
		parts = append(parts, "wd"+strings.Join(tags, "-"))
	}
	return strings.Join(parts, "_")
}

// Key returns the cell's unique, filename-safe identity: the axis
// dimensions plus the seed. Journal files are named <Key>.jsonl.
func (s Spec) Key() string {
	return fmt.Sprintf("%s_s%d", s.dimsKey(), s.WithDefaults().Seed)
}

// Label is the human name for reports: Name when set, else Key.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Key()
}

// DeriveSeed mixes a base seed with a cell key into the cell's own
// seed: deterministic, stable across runs and machines, distinct across
// cells (FNV-1a over the key, xor-folded with the base).
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	seed := int64((h.Sum64() ^ uint64(base)*0x9e3779b97f4a7c15) & 0x7fffffffffffffff)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// SpecHash is a cell's cache identity: FNV-1a over the canonical JSON
// serialization. Unlike Key it covers every field (hyperparameters,
// rounds, net model, ...), so any spec change — not just the key
// dimensions — invalidates a cached cell result.
func SpecHash(s Spec) string {
	b, err := EncodeJSON(s)
	if err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// EncodeJSON is the canonical spec serialization: two-space indented,
// trailing newline. Encode∘Decode∘Encode is byte-identical.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSpec parses one spec, rejecting unknown fields.
func DecodeSpec(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// modelSpec maps the scenario onto a models.Spec (cnn2 is the fixed
// FEMNIST architecture, 62 classes at 28×28 greyscale).
func (s Spec) modelSpec() models.Spec {
	if s.Arch == "cnn2" {
		return models.Spec{Arch: "cnn2", Classes: 62, InC: 1, H: 28, W: 28, Width: s.Width}
	}
	return models.Spec{Arch: s.Arch, Classes: s.Classes, InC: 3, H: s.H, W: s.W, Width: s.Width}
}

// flConfig assembles the simulation config, applying the registry's
// per-algorithm hyperparameter overrides.
func (s Spec) flConfig() fl.Config {
	cfg := fl.Config{
		NumClients:    s.Clients,
		SampleRatio:   s.Participation,
		LocalEpochs:   s.LocalEpochs,
		BatchSize:     s.BatchSize,
		LR:            s.LR,
		Momentum:      s.Momentum,
		WeightDecay:   s.WeightDecay,
		DropRate:      s.Churn,
		HalfPrecision: s.HalfPrecision,
		Seed:          s.Seed,
	}
	ac := s.algoConfig()
	cfg.LR, cfg.ProxMu = ac.LR, ac.ProxMu
	return cfg
}

// topology maps the transport onto the in-process driver selection.
func (s Spec) topology() fl.Topology {
	switch s.Transport.Kind {
	case TransportSharded:
		return fl.Topology{Kind: fl.TopoSharded, Shards: s.Transport.Shards}
	case TransportQuorum:
		return fl.Topology{Kind: fl.TopoQuorum, OnTimeFrac: s.Transport.OnTimeFrac}
	default:
		return fl.Topology{}
	}
}

// BuildEnv constructs the cell's simulation environment: synthetic
// dataset, non-IID partition, per-client train/val splits, the global
// model, and the in-process topology — with tel (may be nil) installed.
// The seed derivations match the historical experiments harness exactly,
// so refactored drivers reproduce their pre-scenario outputs.
func BuildEnv(spec Spec, tel *telemetry.Set) (*fl.Env, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := spec.flConfig()
	var cd []fl.ClientData
	seed := spec.Seed
	switch spec.Dataset {
	case DataFEMNIST:
		total := spec.Clients * spec.PerClient
		set := data.SynthFEMNIST(data.SynthFEMNISTConfig{Writers: spec.Writers}, total, seed*3+401, seed*7+409)
		parts := data.ByWriterPartition(set, spec.Clients, rand.New(rand.NewSource(seed+13)))
		cd = make([]fl.ClientData, len(parts))
		for i, p := range parts {
			tr, va := set.Subset(p).Split(0.8)
			cd[i] = fl.ClientData{Train: tr, Val: va}
		}
	default: // cifar
		total := spec.Clients * spec.PerClient
		ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: spec.Classes, H: spec.H, W: spec.W, Noise: spec.Noise},
			total, seed*3+101, seed*7+303)
		var parts [][]int
		if spec.Partition.Kind == PartShards {
			parts = data.ShardPartition(ds.Y, spec.Clients, spec.Partition.ShardsPerClient,
				rand.New(rand.NewSource(seed+11)))
		} else {
			parts = data.DirichletPartition(ds.Y, spec.Classes, spec.Clients, spec.Partition.Alpha,
				spec.Partition.MinSize, rand.New(rand.NewSource(seed+11)))
		}
		cd = make([]fl.ClientData, len(parts))
		for i, p := range parts {
			tr, va := ds.Subset(p).Split(0.8)
			cd[i] = fl.ClientData{Train: tr, Val: va}
		}
	}
	env := fl.NewEnv(spec.modelSpec(), cfg, cd)
	env.Topo = spec.topology()
	if tel != nil {
		env.EnableTelemetry(tel)
	}
	return env, nil
}
