module spatl

go 1.22
